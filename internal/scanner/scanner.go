// Package scanner is the measurement campaign engine — the zgrab2
// equivalent of the paper (§3.2): it resolves every target domain, issues
// an HTTP/3-lite request to the www-form landing page over QUIC-lite,
// follows up to three redirects, and records per-connection spin-bit
// observation series alongside the QUIC stack's own RTT estimates, exactly
// the data the paper extracts from its extended qlog traces.
//
// Two engines share the same result schema:
//
//   - EngineEmulated drives full packet-level QUIC-lite connections over
//     the virtual-time network emulator — every quantity is measured, not
//     modelled. Use it for accuracy experiments (Figs. 3 and 4) and
//     moderate populations.
//   - EngineFast synthesises connection outcomes from the same ground
//     truth and calibrated closed-form timing. It exists for
//     campaign-scale runs (weekly longitudinal scans, Fig. 2) and is
//     validated against the emulated engine by tests.
package scanner

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/resilience"
	"quicspin/internal/telemetry"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

// ErrInterrupted reports that Run stopped early because Config.Interrupt
// fired (or InterruptAfter elapsed). The partial Result is still returned;
// completed domains are in the checkpoint journal when one is configured.
var ErrInterrupted = errors.New("scanner: campaign interrupted")

// Engine selects how connections are executed.
type Engine int

const (
	// EngineEmulated runs full QUIC-lite packet exchanges.
	EngineEmulated Engine = iota
	// EngineFast synthesises outcomes without packet emulation.
	EngineFast
)

// Config parameterises one measurement run (one "week" of the campaign).
type Config struct {
	// Week is the 1-based campaign week; it selects per-server deployment
	// windows.
	Week int
	// IPv6 scans AAAA targets instead of A targets (Table 4).
	IPv6 bool
	// Engine selects emulated or fast execution.
	Engine Engine
	// Seed drives all scan randomness (per-connection spin dice, delays).
	Seed int64
	// Timeout is the virtual per-connection give-up deadline; zero means
	// 6 s, mirroring a scanning timeout.
	Timeout time.Duration
	// MaxRedirects bounds redirect following; zero means 3 (§3.2.1).
	MaxRedirects int
	// Workers shards domains across parallel event loops; zero means
	// GOMAXPROCS. Per-domain randomness is derived from (Seed, Week,
	// domain), so results are deterministic for a fixed Seed regardless
	// of the Workers value.
	Workers int
	// KeepAllObservations retains spin observation series even for
	// connections without flips (memory-hungry; useful for debugging).
	KeepAllObservations bool
	// Telemetry receives campaign metrics (counters, error classes,
	// per-stage virtual-time histograms). Nil disables instrumentation at
	// near-zero cost on the hot path.
	Telemetry *telemetry.Registry
	// Trace receives per-domain stage traces (dns → connect → handshake →
	// h3 → observe → classify) into per-worker flight-recorder rings, for
	// the /debug/traces endpoint and postmortem dumps on panics, stalls
	// and budget kills. Timestamps come from the engine's virtual clock,
	// and tracing draws no randomness, so results — and therefore Tables
	// 1–5 — are byte-identical with tracing on or off. Nil disables
	// tracing at zero allocation cost on the hot path.
	Trace *trace.Tracer

	// Retry bounds deterministic transient-failure retries (DNS timeouts,
	// handshake timeouts). Backoff runs in virtual time and draws jitter
	// from the per-domain rng, so retried results stay worker-invariant.
	// The zero value disables retries (legacy behaviour).
	Retry resilience.RetryPolicy
	// Breaker enables the per-prefix/AS circuit breaker (§A backoff
	// etiquette): after Breaker.Threshold consecutive transient failures
	// within one AS, further domains there are skipped with a "breaker:"
	// error class until a virtual cooldown elapses. The zero value
	// disables it.
	Breaker resilience.BreakerConfig
	// Checkpoint, when non-empty, journals every completed DomainResult to
	// sharded JSONL files under this directory so an interrupted campaign
	// can resume.
	Checkpoint string
	// Journal tunes the checkpoint journal's storage behaviour (fsync
	// cadence, segment rotation, degraded-mode thresholds, injected
	// filesystem). The zero value is the legacy profile; ignored without
	// Checkpoint.
	Journal resilience.JournalConfig
	// Resume replays an existing Checkpoint journal before scanning and
	// skips the domains it already covers; the merged Result is
	// byte-identical to an uninterrupted run.
	Resume bool
	// Interrupt, when non-nil, stops the campaign gracefully as soon as it
	// is closed (or receives); Run then returns the partial Result with
	// ErrInterrupted.
	Interrupt <-chan struct{}
	// InterruptAfter, when positive, interrupts the campaign after that
	// many domains have completed — the in-process equivalent of killing a
	// run halfway through (used by resume tests and smoke checks).
	InterruptAfter int64
	// Watchdog is the wall-clock budget per emulated connection before the
	// event loop is declared stalled (the domain gets a "stall:" result
	// and the engine is rebuilt). Zero means 30s; negative disables the
	// wall-clock check. A deterministic step budget applies regardless.
	Watchdog time.Duration
	// DNSSchedule injects transient DNS failures for tests: a lookup for
	// (name, type) times out on attempts 0..k-1 where k = DNSSchedule(name,
	// type). Must be a pure function of its arguments.
	DNSSchedule func(name string, t dns.RType) int
	// Shard restricts the run to the contiguous population index range
	// [Shard.Start, Shard.End). The zero value scans the whole population.
	// Sink indices stay population-global, and per-domain randomness is
	// derived from (Seed, Week, domain), so concatenating shard runs is
	// byte-identical to one unsharded run — internal/shard builds its
	// coordinator on exactly this. Only RunStream supports sharding; Run
	// and RunBatch reject it (their materialised Result is indexed by the
	// full population).
	Shard ShardRange
	// Vantage shifts every network path by a vantage point's extra one-way
	// delay and jitter, emulating scans from distinct locations (the
	// multi-vantage methodology of "A First Look at QUIC in the Wild").
	// Both engines apply it identically: the emulated engine stacks it onto
	// the netem path, the fast engine widens its closed-form RTT model. The
	// zero value scans from the baseline vantage.
	Vantage Vantage
	// NetFailFirst injects transient connection failures for tests: the
	// first k attempts against an address (keyed by its string form) lose
	// every packet, then the host recovers. Attempt counters live per
	// worker engine, so use Workers=1 (or an effectively-infinite k) when
	// asserting exact counts.
	NetFailFirst map[string]int

	// panicHook, when set, makes the named domain's scan panic (exercising
	// worker isolation); in-package tests only.
	panicHook func(domain string) bool
	// watchdogSteps overrides the deterministic per-connection step budget
	// of the emulated watchdog; in-package tests only. Zero means 4M.
	watchdogSteps int
}

// Validate reports descriptive errors for config values that zero-default
// helpers would otherwise silently misread (negative Workers, MaxRedirects,
// Timeout, …). Run rejects invalid configs; cmd entry points call it to
// fail fast on bad flags.
func (c Config) Validate() error {
	if c.Week < 0 {
		return fmt.Errorf("scanner: Week must be >= 0 (1-based campaign week), got %d", c.Week)
	}
	if c.Workers < 0 {
		return fmt.Errorf("scanner: Workers must be >= 0 (0 means GOMAXPROCS), got %d", c.Workers)
	}
	if c.MaxRedirects < 0 {
		return fmt.Errorf("scanner: MaxRedirects must be >= 0 (0 means the default of 3), got %d", c.MaxRedirects)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("scanner: Timeout must be >= 0 (0 means the default of 6s), got %v", c.Timeout)
	}
	if c.Engine != EngineEmulated && c.Engine != EngineFast {
		return fmt.Errorf("scanner: unknown Engine %d (want EngineEmulated or EngineFast)", c.Engine)
	}
	if c.Retry.MaxRetries < 0 {
		return fmt.Errorf("scanner: Retry.MaxRetries must be >= 0 (0 disables retries), got %d", c.Retry.MaxRetries)
	}
	if c.Breaker.Threshold < 0 {
		return fmt.Errorf("scanner: Breaker.Threshold must be >= 0 (0 disables the breaker), got %d", c.Breaker.Threshold)
	}
	if c.Resume && c.Checkpoint == "" {
		return fmt.Errorf("scanner: Resume requires a Checkpoint directory")
	}
	if c.Shard.Start < 0 || c.Shard.End < 0 {
		return fmt.Errorf("scanner: Shard bounds must be >= 0, got [%d, %d)", c.Shard.Start, c.Shard.End)
	}
	if c.Shard.enabled() && c.Shard.End < c.Shard.Start {
		return fmt.Errorf("scanner: Shard range is inverted: [%d, %d)", c.Shard.Start, c.Shard.End)
	}
	if c.Vantage.ExtraDelay < 0 || c.Vantage.ExtraJitter < 0 {
		return fmt.Errorf("scanner: Vantage delay and jitter must be >= 0, got %v/%v", c.Vantage.ExtraDelay, c.Vantage.ExtraJitter)
	}
	return nil
}

// ShardRange selects a contiguous slice [Start, End) of the canonical
// population order for Config.Shard. The zero value means everything.
type ShardRange struct {
	Start int
	End   int
}

func (r ShardRange) enabled() bool { return r != ShardRange{} }

// Vantage describes one scanning location for Config.Vantage: extra
// one-way path delay plus extra uniform one-way jitter relative to the
// baseline (the world's built-in path shaping), applied symmetrically to
// both directions of every connection.
type Vantage struct {
	// Name labels the vantage in telemetry and reports.
	Name string
	// ExtraDelay is added to each direction's propagation delay.
	ExtraDelay time.Duration
	// ExtraJitter widens each direction's uniform jitter window.
	ExtraJitter time.Duration
}

func (c Config) timeout() time.Duration {
	if c.Timeout == 0 {
		return 6 * time.Second
	}
	return c.Timeout
}

func (c Config) maxRedirects() int {
	if c.MaxRedirects == 0 {
		return 3
	}
	return c.MaxRedirects
}

func (c Config) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// ConnResult is the per-connection record the analysis pipeline consumes
// (the distilled qlog content of §3.3).
type ConnResult struct {
	// Target is the authority this connection was opened for (www-form).
	Target string
	// IP is the server address.
	IP netip.Addr
	// Hop is 0 for the landing request, 1.. for redirect follow-ups.
	Hop int
	// Err is non-empty when no QUIC connection was established.
	Err string
	// QUIC reports a completed handshake.
	QUIC bool
	// Status and Server come from the HTTP/3-lite response.
	Status int
	Server string
	// Redirect is the Location target, when the response was a redirect.
	Redirect string

	// ZeroPkts and OnePkts count received 1-RTT packets by spin value.
	ZeroPkts, OnePkts int
	// Observations is the received spin series; retained only for
	// connections with spin flips unless Config.KeepAllObservations.
	Observations []core.Observation
	// StackRTTs are the QUIC stack estimator's accepted samples (the
	// paper's baseline), in arrival order.
	StackRTTs []time.Duration
}

// HasFlips reports whether both spin values were received.
func (c *ConnResult) HasFlips() bool { return c.ZeroPkts > 0 && c.OnePkts > 0 }

// Kind classifies the connection like Table 3 (grease separation happens
// in the analysis package).
func (c *ConnResult) Kind() core.SeriesKind {
	switch {
	case c.ZeroPkts == 0 && c.OnePkts == 0:
		return core.KindEmpty
	case c.HasFlips():
		return core.KindFlipping
	case c.OnePkts > 0:
		return core.KindAllOne
	default:
		return core.KindAllZero
	}
}

// StackMin returns the minimum stack RTT sample, or 0 if none.
func (c *ConnResult) StackMin() time.Duration {
	var m time.Duration
	for _, s := range c.StackRTTs {
		if m == 0 || s < m {
			m = s
		}
	}
	return m
}

// DomainResult aggregates one domain's scan.
type DomainResult struct {
	Domain  string
	TLD     string
	Toplist bool
	// Resolved reports DNS success for the scanned address family.
	Resolved bool
	DNSErr   string
	Conns    []ConnResult
}

// QUIC reports whether any connection completed a QUIC handshake.
func (d *DomainResult) QUIC() bool {
	for i := range d.Conns {
		if d.Conns[i].QUIC {
			return true
		}
	}
	return false
}

// SpinActivity reports whether any connection saw spin flips (the paper's
// "Spin" candidate criterion).
func (d *DomainResult) SpinActivity() bool {
	for i := range d.Conns {
		if d.Conns[i].HasFlips() {
			return true
		}
	}
	return false
}

// Result is one complete measurement run.
type Result struct {
	Week    int
	IPv6    bool
	Domains []DomainResult
}

// Run executes a measurement of every domain in the world's population
// through the streaming pipeline (domain generator → worker pool →
// aggregator) and materialises the full Result. Use RunStream to consume
// results incrementally without materialising them, or RunBatch for the
// legacy shard-strided execution kept as a test oracle; all three produce
// identical per-domain results for a fixed Config.Seed, independent of
// Config.Workers.
//
// It returns an error for invalid configs (see Config.Validate), for an
// unreadable or unwritable checkpoint directory, and — wrapped around the
// partial Result — ErrInterrupted when the campaign was stopped early.
func Run(w *websim.World, cfg Config) (*Result, error) {
	if cfg.Shard.enabled() {
		return nil, fmt.Errorf("scanner: Config.Shard requires RunStream (Run materialises the full population)")
	}
	c, err := newCampaign(w, cfg)
	if err != nil {
		return nil, err
	}
	defer c.close()
	out := &Result{Week: cfg.Week, IPv6: cfg.IPv6, Domains: make([]DomainResult, w.NumDomains())}
	c.runPipeline(func(rb *resultBatch) {
		copy(out.Domains[rb.start:], rb.results)
	})
	c.finish()
	if c.interrupted.Load() {
		return out, ErrInterrupted
	}
	return out, nil
}

// RunBatch is the pre-streaming campaign implementation: every worker
// strides over the materialised population and writes results in place.
// It is retained as the oracle for the streaming pipeline's equivalence
// tests (and as a fallback via spinscan -stream=false); new callers
// should use Run or RunStream.
func RunBatch(w *websim.World, cfg Config) (*Result, error) {
	if cfg.Shard.enabled() {
		return nil, fmt.Errorf("scanner: Config.Shard requires RunStream (RunBatch materialises the full population)")
	}
	c, err := newCampaign(w, cfg)
	if err != nil {
		return nil, err
	}
	defer c.close()
	n := w.NumDomains()
	nw := cfg.workers()
	if nw > n {
		nw = 1
	}
	gate := newBatchGate(w, cfg)
	out := &Result{Week: cfg.Week, IPv6: cfg.IPv6, Domains: make([]DomainResult, n)}
	var wg sync.WaitGroup
	for shard := 0; shard < nw; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			c.tm.workersActive.Add(1)
			defer c.tm.workersActive.Add(-1)
			rec := cfg.Trace.Recorder(shard)
			eng := buildEngine(w, cfg, newEngineRng(cfg, shard), c.tm, rec)
			for i := shard; i < n; i += nw {
				if c.interrupted.Load() {
					return
				}
				// Workers ascend within their shards, so breaker waits are
				// only ever on strictly-earlier indices and cannot deadlock.
				key, pos := "", 0
				if gate != nil {
					key, pos = gate.keys[i], gate.pos[i]
				}
				res, ok := c.scanStep(&eng, shard, rec, w.DomainAt(i), key, pos)
				if !ok {
					return
				}
				out.Domains[i] = res
			}
		}(shard)
	}
	wg.Wait()
	c.finish()
	if c.interrupted.Load() {
		return out, ErrInterrupted
	}
	return out, nil
}

// buildEngine constructs a worker's engine; also used to rebuild one whose
// state cannot be trusted after a panic or watchdog stall. rec is the
// shard's trace recorder (nil when tracing is disabled); it outlives
// engine rebuilds so flight rings survive panics and stalls.
func buildEngine(w *websim.World, cfg Config, rng *rand.Rand, tm *scanTelemetry, rec *trace.Recorder) engine {
	if cfg.Engine == EngineFast {
		return newFastEngine(w, cfg, rng, tm, rec)
	}
	return newEmulatedEngine(w, cfg, rng, tm, rec)
}

// scanSafely isolates one domain scan: a panic anywhere in the engine is
// converted into an error-classed DomainResult instead of killing the
// campaign.
func scanSafely(eng engine, cfg Config, d *websim.Domain) (res DomainResult, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			res = DomainResult{
				Domain: d.Name, TLD: d.TLD, Toplist: d.Toplist,
				Conns: []ConnResult{{Target: d.Host(), Err: fmt.Sprintf("panic: scanning %s: %v", d.Name, r)}},
			}
		}
	}()
	return eng.scanDomain(d), false
}

// maybePanic fires the test-only injected fault. runChain calls it once
// per scan, after the stage spans exist but before the trace commits, so
// the recovered panic's flight dump carries the victim's full stage trace.
func maybePanic(cfg Config, d *websim.Domain) {
	if cfg.panicHook != nil && cfg.panicHook(d.Name) {
		panic("injected scanner fault")
	}
}

// newEngineRng derives a worker shard's random stream from the run seed.
// It only seeds engine-construction randomness; every per-domain draw
// comes from domainRng so that sharding cannot influence results.
func newEngineRng(cfg Config, shard int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Week)<<32 ^ int64(shard)*0x9e3779b9))
}

// domainRng derives the random stream for one domain's scan from
// (Seed, Week, domain name). Both engines reseed with it at the start of
// every domain, which makes spin dice, response plans and path noise a
// function of the domain alone — not of scan order or worker count.
// The engines themselves reseed a reusable lazy Rand (see newLazyRand)
// with domainSeed instead of calling this; the streams are identical.
func domainRng(cfg Config, name string) *rand.Rand {
	return rand.New(rand.NewSource(domainSeed(cfg, name)))
}

// engine executes one domain scan. healthy reports whether the engine can
// scan further domains; a stalled emulated loop returns false and the
// worker rebuilds the engine. clockNow exposes the engine's virtual clock
// so campaign-layer trace events (breaker skips, checkpoint replays)
// timestamp consistently with in-scan spans.
type engine interface {
	scanDomain(d *websim.Domain) DomainResult
	healthy() bool
	clockNow() time.Time
}

// Retry stages (telemetry labels of retries_total).
const (
	retryStageDNS  = "dns"
	retryStageConn = "conn"
)

// retrier tracks one domain's retry budget, shared across DNS lookups and
// connection attempts of the whole redirect chain. Backoff advances the
// engine's virtual clock via sleep and draws jitter from the per-domain
// rng, so a retried scan remains a pure function of (Seed, Week, domain).
type retrier struct {
	policy resilience.RetryPolicy
	rng    *rand.Rand
	sleep  func(time.Duration)
	tm     *scanTelemetry
	used   int
}

// retry reports whether the failure described by errStr should be retried,
// burning one unit of budget and sleeping the backoff when it is.
func (r *retrier) retry(stage, errStr string) bool {
	cls := resilience.Classify(errStr)
	// Stalls are transient for campaign-level accounting (the breaker),
	// but never retried in-domain: the engine that produced one must be
	// rebuilt before it can scan again.
	if !r.policy.Enabled() || cls == resilience.ClassStall || !cls.Transient() {
		return false
	}
	if r.used >= r.policy.MaxRetries {
		r.tm.retriesExhausted.Inc()
		return false
	}
	d := r.policy.Backoff(r.rng, r.used)
	r.used++
	r.tm.retries[stage].Inc()
	if r.sleep != nil {
		r.sleep(d)
	}
	return true
}

// resolveRetry resolves the host in the configured address family,
// retrying transient DNS failures within the domain's budget. It returns
// every resolved address so connection-level retries can rotate through
// them (multi-address fallback).
func resolveRetry(rt *retrier, res *dns.Resolver, host string, ipv6 bool) ([]netip.Addr, error) {
	t := dns.TypeA
	if ipv6 {
		t = dns.TypeAAAA
	}
	for attempt := 0; ; attempt++ {
		addrs, err := res.LookupAttempt(host, t, attempt)
		if err == nil {
			return addrs, nil
		}
		if !rt.retry(retryStageDNS, err.Error()) {
			return nil, err
		}
	}
}

// connectRetry dials until success or budget exhaustion, rotating through
// the resolved addresses across attempts (zgrab2-style fallback: the first
// address may be down while a later one answers).
func connectRetry(rt *retrier, addrs []netip.Addr, dial func(ip netip.Addr) ConnResult) ConnResult {
	for attempt := 0; ; attempt++ {
		conn := dial(addrs[attempt%len(addrs)])
		if conn.Err == "" || !rt.retry(retryStageConn, conn.Err) {
			return conn
		}
	}
}

// runChain executes one domain's full scan — landing request plus redirect
// chain — with retry and multi-address fallback. Both engines share it;
// dial performs one engine-specific connection attempt. rec and now carry
// the shard's trace recorder and the engine's virtual clock; with tracing
// disabled (nil rec) every trace block is skipped and the scan allocates
// nothing extra. Tracing reads the clock but draws no randomness, so the
// DomainResult is identical with tracing on or off.
func runChain(cfg Config, rng *rand.Rand, resolver *dns.Resolver, sleep func(time.Duration), tm *scanTelemetry, rec *trace.Recorder, now func() time.Time, d *websim.Domain, dial func(target string, ip netip.Addr, hop int, path string) ConnResult) DomainResult {
	rt := &retrier{policy: cfg.Retry, rng: rng, sleep: sleep, tm: tm}
	res := DomainResult{Domain: d.Name, TLD: d.TLD, Toplist: d.Toplist}
	target, path := d.Host(), "/"
	if rec != nil {
		at := now()
		rec.Begin(d.Name, at)
		rec.StageStart("dns", at)
	}
	addrs, err := resolveRetry(rt, resolver, target, cfg.IPv6)
	if err != nil {
		res.DNSErr = errString(err)
		if rec != nil {
			rec.StageEnd(now())
		}
		maybePanic(cfg, d)
		traceFinish(rec, now, rt, &res)
		return res
	}
	res.Resolved = true
	if rec != nil {
		rec.StageEnd(now())
		rec.SpanAttrInt("addrs", int64(len(addrs)))
	}
	for hop := 0; hop <= cfg.maxRedirects(); hop++ {
		hop := hop
		conn := connectRetry(rt, addrs, func(ip netip.Addr) ConnResult {
			return dial(target, ip, hop, path)
		})
		res.Conns = append(res.Conns, conn)
		if conn.Redirect == "" {
			break
		}
		next := redirectTarget(conn.Redirect)
		if next == "" {
			break
		}
		target, path = next, redirectPath(conn.Redirect)
		naddrs, err := resolveRetry(rt, resolver, target, cfg.IPv6)
		if err != nil {
			break
		}
		addrs = naddrs
	}
	maybePanic(cfg, d)
	traceFinish(rec, now, rt, &res)
	return res
}

// traceOutcome labels a finished domain for the trace ring and exemplar
// sampler: "ok", or the resilience class of the landing failure.
func traceOutcome(res *DomainResult) string {
	if cls := classifyDomain(res); cls != resilience.ClassNone {
		return cls.String()
	}
	return "ok"
}

// traceFinish closes the domain trace: a classify span, domain-level
// attrs (retry budget spent, chain depth), the first error in chain
// order, and the outcome label.
func traceFinish(rec *trace.Recorder, now func() time.Time, rt *retrier, res *DomainResult) {
	if rec == nil {
		return
	}
	at := now()
	outcome := traceOutcome(res)
	rec.StageStart("classify", at)
	rec.SpanAttr("class", outcome)
	rec.StageEnd(at)
	rec.AttrInt("retries", int64(rt.used))
	rec.AttrInt("hops", int64(len(res.Conns)))
	rec.Error(res.DNSErr)
	for i := range res.Conns {
		if res.Conns[i].Err != "" {
			rec.Error(res.Conns[i].Err)
			break
		}
	}
	rec.End(at, outcome)
}

// spinEdges counts spin-value transitions in a received series (the
// trace's spin-activity attr; table analysis has its own edge logic).
func spinEdges(obs []core.Observation) int {
	n := 0
	for i := 1; i < len(obs); i++ {
		if obs[i].Spin != obs[i-1].Spin {
			n++
		}
	}
	return n
}

// splitRedirect parses a Location value of the form https://host[:port]/path.
// The scheme is matched case-insensitively and an explicit port is stripped
// (HTTPS://Host:443/x redirects to host "host", path "/x"); the host is
// lowercased like any DNS name. ok is false for non-https or empty hosts.
func splitRedirect(loc string) (host, path string, ok bool) {
	const pfx = "https://"
	if len(loc) <= len(pfx) || !strings.EqualFold(loc[:len(pfx)], pfx) {
		return "", "/", false
	}
	rest := loc[len(pfx):]
	path = "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	} else {
		host = rest
	}
	if i := strings.LastIndexByte(host, ':'); i >= 0 && isDigits(host[i+1:]) {
		host = host[:i]
	}
	if host == "" {
		return "", "/", false
	}
	return strings.ToLower(host), path, true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// redirectTarget extracts the authority from a Location header ("" when
// the value is not an https URL).
func redirectTarget(loc string) string {
	host, _, ok := splitRedirect(loc)
	if !ok {
		return ""
	}
	return host
}

// redirectPath extracts the path component of a Location header,
// defaulting to "/" when absent. Both engines carry it to the next hop so
// that redirect chains terminate identically: only requests for "/" are
// answered with a redirect.
func redirectPath(loc string) string {
	_, path, _ := splitRedirect(loc)
	return path
}

// scannerHeaders carry the research contact hint the paper's ethics
// section describes (§A: "embedding our projectname as hint in every HTTP
// request").
func scannerHeaders() map[string]string {
	return map[string]string{
		"user-agent": "quicspin-scanner/1.0",
		"x-research": "spin-bit measurement study; opt out: https://quicspin.invalid/optout",
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
