// Package scanner is the measurement campaign engine — the zgrab2
// equivalent of the paper (§3.2): it resolves every target domain, issues
// an HTTP/3-lite request to the www-form landing page over QUIC-lite,
// follows up to three redirects, and records per-connection spin-bit
// observation series alongside the QUIC stack's own RTT estimates, exactly
// the data the paper extracts from its extended qlog traces.
//
// Two engines share the same result schema:
//
//   - EngineEmulated drives full packet-level QUIC-lite connections over
//     the virtual-time network emulator — every quantity is measured, not
//     modelled. Use it for accuracy experiments (Figs. 3 and 4) and
//     moderate populations.
//   - EngineFast synthesises connection outcomes from the same ground
//     truth and calibrated closed-form timing. It exists for
//     campaign-scale runs (weekly longitudinal scans, Fig. 2) and is
//     validated against the emulated engine by tests.
package scanner

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/dns"
	"quicspin/internal/telemetry"
	"quicspin/internal/websim"
)

// Engine selects how connections are executed.
type Engine int

const (
	// EngineEmulated runs full QUIC-lite packet exchanges.
	EngineEmulated Engine = iota
	// EngineFast synthesises outcomes without packet emulation.
	EngineFast
)

// Config parameterises one measurement run (one "week" of the campaign).
type Config struct {
	// Week is the 1-based campaign week; it selects per-server deployment
	// windows.
	Week int
	// IPv6 scans AAAA targets instead of A targets (Table 4).
	IPv6 bool
	// Engine selects emulated or fast execution.
	Engine Engine
	// Seed drives all scan randomness (per-connection spin dice, delays).
	Seed int64
	// Timeout is the virtual per-connection give-up deadline; zero means
	// 6 s, mirroring a scanning timeout.
	Timeout time.Duration
	// MaxRedirects bounds redirect following; zero means 3 (§3.2.1).
	MaxRedirects int
	// Workers shards domains across parallel event loops; zero means
	// GOMAXPROCS. Per-domain randomness is derived from (Seed, Week,
	// domain), so results are deterministic for a fixed Seed regardless
	// of the Workers value.
	Workers int
	// KeepAllObservations retains spin observation series even for
	// connections without flips (memory-hungry; useful for debugging).
	KeepAllObservations bool
	// Telemetry receives campaign metrics (counters, error classes,
	// per-stage virtual-time histograms). Nil disables instrumentation at
	// near-zero cost on the hot path.
	Telemetry *telemetry.Registry
}

// Validate reports descriptive errors for config values that zero-default
// helpers would otherwise silently misread (negative Workers, MaxRedirects,
// Timeout, …). Run rejects invalid configs; cmd entry points call it to
// fail fast on bad flags.
func (c Config) Validate() error {
	if c.Week < 0 {
		return fmt.Errorf("scanner: Week must be >= 0 (1-based campaign week), got %d", c.Week)
	}
	if c.Workers < 0 {
		return fmt.Errorf("scanner: Workers must be >= 0 (0 means GOMAXPROCS), got %d", c.Workers)
	}
	if c.MaxRedirects < 0 {
		return fmt.Errorf("scanner: MaxRedirects must be >= 0 (0 means the default of 3), got %d", c.MaxRedirects)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("scanner: Timeout must be >= 0 (0 means the default of 6s), got %v", c.Timeout)
	}
	if c.Engine != EngineEmulated && c.Engine != EngineFast {
		return fmt.Errorf("scanner: unknown Engine %d (want EngineEmulated or EngineFast)", c.Engine)
	}
	return nil
}

func (c Config) timeout() time.Duration {
	if c.Timeout == 0 {
		return 6 * time.Second
	}
	return c.Timeout
}

func (c Config) maxRedirects() int {
	if c.MaxRedirects == 0 {
		return 3
	}
	return c.MaxRedirects
}

func (c Config) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// ConnResult is the per-connection record the analysis pipeline consumes
// (the distilled qlog content of §3.3).
type ConnResult struct {
	// Target is the authority this connection was opened for (www-form).
	Target string
	// IP is the server address.
	IP netip.Addr
	// Hop is 0 for the landing request, 1.. for redirect follow-ups.
	Hop int
	// Err is non-empty when no QUIC connection was established.
	Err string
	// QUIC reports a completed handshake.
	QUIC bool
	// Status and Server come from the HTTP/3-lite response.
	Status int
	Server string
	// Redirect is the Location target, when the response was a redirect.
	Redirect string

	// ZeroPkts and OnePkts count received 1-RTT packets by spin value.
	ZeroPkts, OnePkts int
	// Observations is the received spin series; retained only for
	// connections with spin flips unless Config.KeepAllObservations.
	Observations []core.Observation
	// StackRTTs are the QUIC stack estimator's accepted samples (the
	// paper's baseline), in arrival order.
	StackRTTs []time.Duration
}

// HasFlips reports whether both spin values were received.
func (c *ConnResult) HasFlips() bool { return c.ZeroPkts > 0 && c.OnePkts > 0 }

// Kind classifies the connection like Table 3 (grease separation happens
// in the analysis package).
func (c *ConnResult) Kind() core.SeriesKind {
	switch {
	case c.ZeroPkts == 0 && c.OnePkts == 0:
		return core.KindEmpty
	case c.HasFlips():
		return core.KindFlipping
	case c.OnePkts > 0:
		return core.KindAllOne
	default:
		return core.KindAllZero
	}
}

// StackMin returns the minimum stack RTT sample, or 0 if none.
func (c *ConnResult) StackMin() time.Duration {
	var m time.Duration
	for _, s := range c.StackRTTs {
		if m == 0 || s < m {
			m = s
		}
	}
	return m
}

// DomainResult aggregates one domain's scan.
type DomainResult struct {
	Domain  string
	TLD     string
	Toplist bool
	// Resolved reports DNS success for the scanned address family.
	Resolved bool
	DNSErr   string
	Conns    []ConnResult
}

// QUIC reports whether any connection completed a QUIC handshake.
func (d *DomainResult) QUIC() bool {
	for i := range d.Conns {
		if d.Conns[i].QUIC {
			return true
		}
	}
	return false
}

// SpinActivity reports whether any connection saw spin flips (the paper's
// "Spin" candidate criterion).
func (d *DomainResult) SpinActivity() bool {
	for i := range d.Conns {
		if d.Conns[i].HasFlips() {
			return true
		}
	}
	return false
}

// Result is one complete measurement run.
type Result struct {
	Week    int
	IPv6    bool
	Domains []DomainResult
}

// Run executes a measurement of every domain in the world's population.
// It returns an error only for invalid configs (see Config.Validate).
func Run(w *websim.World, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	domains := w.Domains
	nw := cfg.workers()
	if nw > len(domains) {
		nw = 1
	}
	tm := newScanTelemetry(cfg.Telemetry)
	tm.week.Set(int64(cfg.Week))
	// The domain counter is cumulative across runs sharing a registry (a
	// multi-week campaign), so the population denominator accumulates too:
	// the progress ratio stays ≤ 1 for the campaign as a whole.
	tm.population.Add(int64(len(domains)))
	out := &Result{Week: cfg.Week, IPv6: cfg.IPv6, Domains: make([]DomainResult, len(domains))}
	var wg sync.WaitGroup
	for shard := 0; shard < nw; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			tm.workersActive.Add(1)
			defer tm.workersActive.Add(-1)
			rng := newEngineRng(cfg, shard)
			var eng engine
			if cfg.Engine == EngineFast {
				eng = newFastEngine(w, cfg, rng, tm)
			} else {
				eng = newEmulatedEngine(w, cfg, rng, tm)
			}
			for i := shard; i < len(domains); i += nw {
				out.Domains[i] = eng.scanDomain(domains[i])
				tm.recordDomain(&out.Domains[i])
			}
		}(shard)
	}
	wg.Wait()
	return out, nil
}

// newEngineRng derives a worker shard's random stream from the run seed.
// It only seeds engine-construction randomness; every per-domain draw
// comes from domainRng so that sharding cannot influence results.
func newEngineRng(cfg Config, shard int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Week)<<32 ^ int64(shard)*0x9e3779b9))
}

// domainRng derives the random stream for one domain's scan from
// (Seed, Week, domain name). Both engines reseed with it at the start of
// every domain, which makes spin dice, response plans and path noise a
// function of the domain alone — not of scan order or worker count.
func domainRng(cfg Config, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Week)<<32 ^ int64(h.Sum64())))
}

// engine executes one domain scan.
type engine interface {
	scanDomain(d *websim.Domain) DomainResult
}

// resolveTarget resolves the www-form host of a domain in the configured
// address family.
func resolveTarget(res *dns.Resolver, host string, ipv6 bool) (netip.Addr, error) {
	t := dns.TypeA
	if ipv6 {
		t = dns.TypeAAAA
	}
	addrs, err := res.Lookup(host, t)
	if err != nil {
		return netip.Addr{}, err
	}
	return addrs[0], nil
}

// redirectTarget extracts the authority from a Location header of the form
// https://host/path.
func redirectTarget(loc string) string {
	const pfx = "https://"
	if len(loc) <= len(pfx) || loc[:len(pfx)] != pfx {
		return ""
	}
	rest := loc[len(pfx):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	return rest
}

// redirectPath extracts the path component of a Location header of the
// form https://host/path, defaulting to "/" when absent. Both engines
// carry it to the next hop so that redirect chains terminate identically:
// only requests for "/" are answered with a redirect.
func redirectPath(loc string) string {
	const pfx = "https://"
	if len(loc) <= len(pfx) || loc[:len(pfx)] != pfx {
		return "/"
	}
	rest := loc[len(pfx):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[i:]
		}
	}
	return "/"
}

// scannerHeaders carry the research contact hint the paper's ethics
// section describes (§A: "embedding our projectname as hint in every HTTP
// request").
func scannerHeaders() map[string]string {
	return map[string]string{
		"user-agent": "quicspin-scanner/1.0",
		"x-research": "spin-bit measurement study; opt out: https://quicspin.invalid/optout",
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
