package scanner

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"quicspin/internal/dns"
	"quicspin/internal/h3"
	"quicspin/internal/hostile"
	"quicspin/internal/netem"
	"quicspin/internal/sim"
	"quicspin/internal/targets"
	"quicspin/internal/trace"
	"quicspin/internal/transport"
	"quicspin/internal/websim"
)

// emulatedEngine scans domains with full packet-level QUIC-lite exchanges
// over a private virtual-time network. One engine instance serves one
// worker shard; everything is single-threaded on its loop.
type emulatedEngine struct {
	world *websim.World
	cfg   Config
	rng   *rand.Rand
	tm    *scanTelemetry
	rec   *trace.Recorder
	// clock is the loop's Now bound once at construction (a per-scan
	// method value would allocate on every domain).
	clock func() time.Time

	loop      *sim.Loop
	net       *netem.Network
	resolver  *dns.Resolver
	servers   map[netip.Addr]*serverSite
	clientSeq int
	// drng is the reusable per-domain Rand (see lazySource): reseeding is
	// O(1) for domains that never roll dice.
	drng *rand.Rand
	// stalled marks the engine unhealthy after a watchdog kill: the loop
	// still holds undrained events, so the worker must rebuild the engine
	// before scanning another domain.
	stalled bool
}

// serverSite is one instantiated server IP on the worker's network.
type serverSite struct {
	host *netem.ServerHost
	srv  *websim.Server
}

func newEmulatedEngine(w *websim.World, cfg Config, rng *rand.Rand, tm *scanTelemetry, rec *trace.Recorder) *emulatedEngine {
	loop := sim.NewLoop(campaignStart(cfg.Week))
	e := &emulatedEngine{
		world:    w,
		cfg:      cfg,
		rng:      rng,
		tm:       tm,
		rec:      rec,
		clock:    loop.Now,
		loop:     loop,
		net:      netem.New(loop, netem.PathConfig{Delay: 10 * time.Millisecond}, rng),
		resolver: dns.NewResolver(w.DNSBackend(), rng),
		servers:  map[netip.Addr]*serverSite{},
		drng:     newLazyRand(),
	}
	e.net.SetTelemetry(cfg.Telemetry)
	e.resolver.EnableCache()
	e.resolver.SetTelemetry(cfg.Telemetry)
	e.resolver.SetSchedule(cfg.DNSSchedule)
	for addr, k := range cfg.NetFailFirst {
		e.net.SetFailFirst(addr, k)
	}
	return e
}

// campaignStart anchors virtual time: one week apart per campaign week.
func campaignStart(week int) time.Time {
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC) // CW 15, 2022
	return base.AddDate(0, 0, 7*(week-1))
}

func (e *emulatedEngine) scanDomain(d *websim.Domain) DomainResult {
	// Reseed every random stream the scan can touch from (Seed, Week,
	// domain) so the outcome is independent of scan order and sharding.
	// The reusable Rand is reseeded in place (byte-identical stream, O(1)
	// until the first draw — see lazySource).
	e.drng.Seed(domainSeed(e.cfg, d.Name))
	rng := e.drng
	e.rng = rng
	e.net.SetRng(rng)
	// Retry backoff advances this worker's virtual clock; the loop also
	// fires any pending events inside the backoff window.
	sleep := func(d time.Duration) { e.loop.RunUntil(e.loop.Now().Add(d)) }
	res := runChain(e.cfg, rng, e.resolver, sleep, e.tm, e.rec, e.clock, d, e.connect)
	// Drain the loop completely: leftover events (server retransmissions,
	// response-chunk timers, idle timeouts) must consume this domain's
	// random stream, not leak draws into the next domain's scan. A stalled
	// loop is not drained — it may never empty; the worker rebuilds the
	// engine instead.
	if !e.stalled {
		for e.loop.Step() {
		}
	}
	return res
}

// healthy implements engine; false after a watchdog stall.
func (e *emulatedEngine) healthy() bool { return !e.stalled }

// clockNow implements engine: the loop's virtual clock.
func (e *emulatedEngine) clockNow() time.Time { return e.loop.Now() }

// defaultWatchdogSteps bounds the event-loop iterations of one connection
// deterministically; a healthy exchange needs a few thousand. Exceeding it
// means the loop is re-arming events without advancing toward the virtual
// deadline — a stall.
const defaultWatchdogSteps = 4 << 20

// connect performs one request/response exchange against ip.
func (e *emulatedEngine) connect(target string, ip netip.Addr, hop int, path string) ConnResult {
	out := ConnResult{Target: target, IP: ip, Hop: hop}
	if e.stalled {
		out.Err = "stall: engine marked unhealthy"
		return out
	}
	srv := e.world.ServerAt(ip)
	e.site(ip, srv) // instantiate the server stack (nil for blackholes)

	e.clientSeq++
	clientAddr := fmt.Sprintf("probe-%d", e.clientSeq)
	serverAddr := ip.String()
	e.net.BeginAttempt(serverAddr) // injected-outage accounting (tests)
	if srv != nil {
		path := e.world.PathConfig(srv)
		if v := e.cfg.Vantage; v.ExtraDelay != 0 || v.ExtraJitter != 0 {
			// The vantage point's extra path sits between the probe and
			// every server, so it stacks onto the server's own shaping.
			path = path.Stack(netem.PathConfig{Delay: v.ExtraDelay, Jitter: v.ExtraJitter})
		}
		e.net.SetSymmetricPath(clientAddr, serverAddr, path)
	}
	// Wire-level misbehavior: a fresh per-connection mangler on the
	// server's outbound traffic (nil for well-behaved and site-level
	// hostile profiles).
	hostileProfile := hostile.None
	if srv != nil && srv.QUIC {
		hostileProfile = srv.Hostile
	}
	if m := hostile.NewMangler(hostileProfile); m != nil {
		e.net.SetMangler(serverAddr, m)
		defer e.net.ClearMangler(serverAddr)
	}

	start := e.loop.Now()
	rec := e.rec
	var netBefore netem.Stats
	if rec != nil {
		rec.StageStart("connect", start)
		rec.SpanAttrInt("hop", int64(hop))
		rec.SpanAttr("target", target)
		rec.SpanAttr("ip", serverAddr)
		if hostileProfile != hostile.None {
			rec.SpanAttr("hostile", hostileProfile.String())
		}
		netBefore = e.net.Stats()
	}
	conn := transport.NewClientConn(transport.Config{Rng: e.rng, Budget: transport.DefaultBudget()}, start)
	client := netem.NewClientHost(e.net, clientAddr, serverAddr, conn)
	client.ProcessDelay = func() time.Duration { return e.world.Turnaround(e.rng) }
	hc := h3.NewClientConn(conn)
	reqID, err := hc.Do(&h3.Request{
		Method: "GET", Authority: target, Path: path, Headers: scannerHeaders(),
	})
	if err != nil {
		out.Err = errString(err)
		if rec != nil {
			rec.StageEnd(e.loop.Now())
		}
		client.Close()
		return out
	}

	done := false
	var hsAt time.Time // virtual handshake-completion instant (stage span)
	var resp *h3.Response
	var respErr error
	verdict := hostile.None
	inspected := false // response head vetted: no further inspection needed
	client.OnActivity = func(c *transport.Conn, now time.Time) {
		if hsAt.IsZero() && c.HandshakeComplete() {
			hsAt = now
		}
		if done {
			return
		}
		// Graceful degradation: inspect the partial response stream on
		// every delivery, so a hostile response (flood, oversize, garbage)
		// is classified from its wire signature instead of being read to
		// completion — or forever.
		if !inspected {
			if data, _ := c.StreamRecv(reqID); len(data) > 0 {
				verdict = hostile.InspectStream(data)
				if verdict != hostile.None {
					done = true
					return
				}
				// Once the header block has terminated acceptably, nothing
				// later in the body can change the verdict.
				if bytes.Contains(data, []byte("\n\n")) {
					inspected = true
				}
			}
		}
		if r, complete, err := hc.Response(reqID); complete {
			done, resp, respErr = true, r, err
		}
		if c.Terminating() {
			done = true
		}
	}
	client.Kick()

	deadline := e.loop.Now().Add(e.cfg.timeout())
	budget := e.cfg.watchdogSteps
	if budget <= 0 {
		budget = defaultWatchdogSteps
	}
	wall := e.cfg.Watchdog
	if wall == 0 {
		wall = 30 * time.Second
	}
	wallStart := time.Now()
	steps := 0
	for !done && e.loop.Now().Before(deadline) {
		if !e.loop.Step() {
			break
		}
		steps++
		// Watchdog: a deterministic step budget, plus a wall-clock bound
		// checked every 1024 steps (cheap enough for the hot path). Either
		// trips only when the loop spins without advancing virtual time.
		if steps >= budget || (wall > 0 && steps%1024 == 0 && time.Since(wallStart) > wall) {
			e.stalled = true
			e.tm.stalls.Inc()
			stage := "h3"
			if hsAt.IsZero() {
				stage = "handshake"
			}
			// The message names the target, the stage the loop died in, and
			// the step budget — all pure functions of (Seed, Week, domain),
			// so results stay deterministic. The flight-recorder dump path
			// travels via the structured trace log, never the result.
			out.Err = fmt.Sprintf("stall: %s stage for %s exceeded the watchdog budget (%d steps)", stage, target, budget)
			if rec != nil {
				rec.StageEnd(e.loop.Now())
				rec.SpanAttr("stage", stage)
				rec.MarkDump("stall")
			}
			return out
		}
	}

	now := e.loop.Now()
	e.tm.stTotal.Start(start).End(now)
	if !hsAt.IsZero() {
		e.tm.stHandshake.Start(start).End(hsAt)
		e.tm.stRequest.Start(hsAt).End(now)
	}
	out.QUIC = conn.HandshakeComplete()
	obs := conn.Observations()
	for _, o := range obs {
		if o.Spin {
			out.OnePkts++
		} else {
			out.ZeroPkts++
		}
	}
	if out.HasFlips() || e.cfg.KeepAllObservations {
		out.Observations = append(out.Observations, obs...)
	}
	out.StackRTTs = append(out.StackRTTs, conn.RTT().Samples()...)
	var be *transport.BudgetError
	switch {
	case errors.As(conn.TermError(), &be):
		// A tripped resource budget wins over everything else: the scan was
		// aborted deliberately, whatever else was in flight.
		out.Err = hostile.BudgetErrText(be.Kind)
		e.tm.bumpBudget(be.Kind)
		rec.MarkDump("budget")
	case verdict != hostile.None:
		out.Err = hostile.ErrText(verdict)
	case resp == nil && out.QUIC && remoteClose(conn):
		out.Err = hostile.ErrText(hostile.MidstreamReset)
	case resp == nil && !out.QUIC && conn.Stats().PacketsReceived > 0:
		// A lost honest handshake leaves PacketsReceived at zero (the SHLO
		// flight is one coalesced datagram); parseable packets without a
		// completed handshake mean the peer is stringing us along.
		out.Err = hostile.ErrText(hostile.Slowloris)
	case resp != nil:
		out.Status = resp.Status
		out.Server = resp.Server()
		if resp.IsRedirect() {
			out.Redirect = resp.Location()
		}
		if p := hostile.DetectSpinPattern(obs); p != hostile.None {
			out.Err = hostile.ErrText(p)
		}
	case respErr != nil:
		out.Err = respErr.Error()
	case !out.QUIC:
		out.Err = "timeout: no QUIC handshake"
	default:
		out.Err = "timeout: no response"
	}

	if rec != nil {
		// connect covers dial → handshake completion; handshake and h3 are
		// recorded retroactively now that the exchange's instants are known
		// (spans are a flat sequence, not a stack).
		if !hsAt.IsZero() {
			rec.StageEnd(hsAt)
			rec.StageStart("handshake", start)
			rec.StageEnd(hsAt)
			rec.StageStart("h3", hsAt)
			rec.StageEnd(now)
		} else {
			rec.StageEnd(now)
		}
		rec.StageStart("observe", now)
		rec.SpanAttrInt("pkts_zero", int64(out.ZeroPkts))
		rec.SpanAttrInt("pkts_one", int64(out.OnePkts))
		rec.SpanAttrInt("spin_edges", int64(spinEdges(obs)))
		rec.SpanAttrInt("rtt_samples", int64(len(out.StackRTTs)))
		delta := e.net.Stats().Delta(netBefore)
		rec.SpanAttrInt("pkts_sent", int64(delta.Sent))
		rec.SpanAttrInt("pkts_dropped", int64(delta.Dropped))
		rec.StageEnd(now)
	}

	conn.Close(now, 0, "scan complete")
	client.Kick()
	client.Close()
	e.net.ClearPath(clientAddr, serverAddr)
	return out
}

// remoteClose reports whether the connection was terminated by a peer
// CONNECTION_CLOSE (as opposed to a local close or timeout).
func remoteClose(conn *transport.Conn) bool {
	te, ok := conn.TermError().(*transport.TransportError)
	return ok && te.Remote
}

// site returns (building on demand) the worker-local server stack for ip.
// Non-QUIC or unallocated addresses stay blackholes: the client's packets
// are delivered to nobody.
func (e *emulatedEngine) site(ip netip.Addr, srv *websim.Server) *serverSite {
	if srv == nil || !srv.QUIC {
		return nil
	}
	if s, ok := e.servers[ip]; ok {
		return s
	}
	week := e.cfg.Week
	world := e.world
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{
			Rng:        e.rng,
			SpinPolicy: srv.PolicyForWeek(week),
		}
	})
	host := netem.NewServerHost(e.net, ip.String(), ep)
	host.ProcessDelay = func() time.Duration { return e.world.Turnaround(e.rng) }
	// Serve with application timing: when a request completes, build the
	// response and stream it according to the server's response plan
	// (TTFB + dynamic-page chunk gaps).
	pending := map[*transport.Conn]map[uint64]bool{}
	host.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			if !conn.HandshakeComplete() || conn.Terminating() {
				continue
			}
			seen := pending[conn]
			if seen == nil {
				seen = map[uint64]bool{}
				pending[conn] = seen
			}
			for _, id := range conn.RecvStreamIDs() {
				if seen[id] {
					continue
				}
				data, complete := conn.StreamRecv(id)
				if !complete {
					continue
				}
				seen[id] = true
				// Site-level hostile behavior: replace the application
				// response with the profile's pathological payload.
				switch srv.Hostile {
				case hostile.OversizedBody, hostile.HeaderFlood, hostile.QlogGarbage:
					e.hostileResponse(host, srv, conn, id)
					continue
				}
				var resp *h3.Response
				if req, err := h3.ParseRequest(data); err != nil {
					resp = &h3.Response{Status: 400, Headers: map[string]string{"server": srv.Software}}
				} else {
					resp = buildResponse(world, srv, req)
				}
				enc := h3.EncodeResponse(resp)
				if srv.Hostile == hostile.MidstreamReset {
					// Send half the response, then slam the door.
					e.midstreamReset(host, srv, conn, id, enc)
					continue
				}
				e.streamResponse(host, srv, conn, id, enc)
			}
		}
	}
	s := &serverSite{host: host, srv: srv}
	e.servers[ip] = s
	return s
}

// streamResponse schedules the chunked application writes of an encoded
// response according to the server's response plan.
func (e *emulatedEngine) streamResponse(host *netem.ServerHost, srv *websim.Server, conn *transport.Conn, id uint64, data []byte) {
	plan := srv.ResponsePlan(e.rng, len(data))
	off := 0
	for i, ch := range plan {
		piece := data[off : off+ch.Bytes]
		off += ch.Bytes
		fin := i == len(plan)-1
		e.loop.After(ch.At, func(time.Time) {
			if conn.Terminating() {
				return
			}
			_ = conn.SendStream(id, piece, fin)
			host.Kick()
		})
	}
}

// hostileResponse streams the profile's pathological payload after the
// site's usual time-to-first-byte, never finishing the stream (the scanner
// must classify from the partial head, not wait it out).
func (e *emulatedEngine) hostileResponse(host *netem.ServerHost, srv *websim.Server, conn *transport.Conn, id uint64) {
	data := hostile.ResponseBytes(srv.Hostile, srv.Software)
	ttfb := srv.ProcessingDelay(e.rng)
	e.loop.After(ttfb, func(time.Time) {
		if conn.Terminating() {
			return
		}
		_ = conn.SendStream(id, data, false)
		host.Kick()
	})
}

// midstreamReset streams the first half of an honest response, then closes
// the connection with an application error before the body completes.
func (e *emulatedEngine) midstreamReset(host *netem.ServerHost, srv *websim.Server, conn *transport.Conn, id uint64, enc []byte) {
	ttfb := srv.ProcessingDelay(e.rng)
	half := enc[:len(enc)/2]
	e.loop.After(ttfb, func(time.Time) {
		if conn.Terminating() {
			return
		}
		_ = conn.SendStream(id, half, false)
		host.Kick()
	})
	e.loop.After(ttfb+100*time.Millisecond, func(now time.Time) {
		if conn.Terminating() {
			return
		}
		conn.Close(now, 0x10, "internal error")
		host.Kick()
	})
}

// buildResponse renders the landing page (or redirect) for a request, with
// the Server header used for webserver attribution.
func buildResponse(w *websim.World, srv *websim.Server, req *h3.Request) *h3.Response {
	d := w.DomainByHost(req.Authority)
	hdr := map[string]string{"server": srv.Software, "content-type": "text/html"}
	if d == nil {
		return &h3.Response{Status: 404, Headers: hdr, Body: []byte("unknown authority")}
	}
	if d.RedirectTo != "" && req.Path == "/" {
		hdr["location"] = "https://" + targets.PrependWWW(d.RedirectTo) + "/landing"
		return &h3.Response{Status: 301, Headers: hdr}
	}
	body := make([]byte, d.BodyBytes)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	return &h3.Response{Status: 200, Headers: hdr, Body: body}
}
