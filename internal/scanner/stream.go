package scanner

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quicspin/internal/resilience"
	"quicspin/internal/trace"
	"quicspin/internal/websim"
)

// streamBatchSize is the generator→worker hand-off granularity: small
// enough to keep workers load-balanced and the reorder buffer tiny, large
// enough to amortise channel operations over fast-engine scans.
const streamBatchSize = 64

// domainBatch is one contiguous run of population indices, synthesised by
// the generator in canonical order (with the breaker slots pre-assigned in
// that order, which is what makes breaker decisions worker-invariant).
type domainBatch struct {
	start   int
	domains []*websim.Domain
	// keys/pos are the breaker group and in-group position per domain;
	// nil when the breaker is disabled.
	keys []string
	pos  []int
}

// resultBatch carries one batch's finished results. results may be shorter
// than dispatched when the campaign was interrupted mid-batch; the missing
// tail was never scanned.
type resultBatch struct {
	start      int
	dispatched int
	results    []DomainResult
}

// campaign is the shared state of one measurement run: configuration,
// telemetry, the checkpoint journal, the circuit breaker, and interrupt
// bookkeeping. Both the streaming pipeline (Run, RunStream) and the legacy
// batch oracle (RunBatch) execute domains through campaign.scanStep, so
// the two paths cannot drift apart semantically.
type campaign struct {
	w        *websim.World
	cfg      Config
	tm       *scanTelemetry
	journal  *resilience.Journal
	replayed map[string]json.RawMessage
	br       *resilience.Breaker // nil when disabled

	interrupted atomic.Bool
	completed   atomic.Int64
	started     time.Time
	memStart    runtime.MemStats

	stopWatch chan struct{}
}

func newCampaign(w *websim.World, cfg Config) (*campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &campaign{w: w, cfg: cfg, tm: newScanTelemetry(cfg.Telemetry)}
	if cfg.Shard.enabled() && cfg.Shard.End > w.NumDomains() {
		return nil, fmt.Errorf("scanner: Shard range [%d, %d) exceeds the population of %d", cfg.Shard.Start, cfg.Shard.End, w.NumDomains())
	}
	c.tm.week.Set(int64(cfg.Week))
	// The domain counter is cumulative across runs sharing a registry (a
	// multi-week campaign, or several shards of one), so the population
	// denominator accumulates the slice actually queued: the progress
	// ratio stays ≤ 1 for the campaign as a whole.
	start, end := c.bounds()
	c.tm.population.Add(int64(end - start))

	journal, replayed, err := openCheckpoint(cfg)
	if err != nil {
		return nil, err
	}
	c.journal, c.replayed = journal, replayed
	if cfg.Breaker.Enabled() {
		c.br = resilience.NewBreaker(cfg.Breaker)
	}
	if cfg.Interrupt != nil {
		c.stopWatch = make(chan struct{})
		go func() {
			select {
			case <-cfg.Interrupt:
				c.interrupt()
			case <-c.stopWatch:
			}
		}()
	}
	c.started = time.Now()
	if cfg.Telemetry != nil {
		runtime.ReadMemStats(&c.memStart)
	}
	return c, nil
}

// bounds returns the population index range this run covers: the shard
// slice when Config.Shard is set, the whole population otherwise.
func (c *campaign) bounds() (start, end int) {
	if c.cfg.Shard.enabled() {
		return c.cfg.Shard.Start, c.cfg.Shard.End
	}
	return 0, c.w.NumDomains()
}

// interrupt stops the campaign: workers finish their current domain, the
// generator stops producing, and blocked breaker waiters are released.
func (c *campaign) interrupt() {
	if c.interrupted.CompareAndSwap(false, true) && c.br != nil {
		c.br.Abort()
	}
}

// finish records end-of-run telemetry (throughput and allocation deltas).
func (c *campaign) finish() {
	if el := time.Since(c.started); el > 0 {
		c.tm.domainsPerSec.Set(int64(float64(c.completed.Load()) / el.Seconds()))
	}
	if c.cfg.Telemetry != nil {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		c.tm.allocBytes.Set(int64(m.TotalAlloc - c.memStart.TotalAlloc))
		c.tm.allocObjects.Set(int64(m.Mallocs - c.memStart.Mallocs))
	}
}

func (c *campaign) close() {
	if c.stopWatch != nil {
		close(c.stopWatch)
	}
	if c.journal != nil {
		if err := c.journal.Close(); err != nil {
			// A failed close means the journal tail may not be durable:
			// count it and raise the degraded gauge like any other
			// checkpoint storage failure.
			c.tm.checkpointErrors.Inc()
		}
		st := c.journal.Stats()
		c.tm.checkpointDegraded.Set(boolGauge(st.Degraded))
		c.tm.journalRotations.Set(st.Rotations)
		c.tm.journalSkipped.Set(st.Skipped)
	}
}

// boolGauge maps a boolean state onto a 0/1 gauge value.
func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// scanStep executes one domain end to end: breaker acquisition, checkpoint
// replay, the scan itself (with engine rebuild after panics or stalls),
// breaker recording, journaling and telemetry. ok is false when the
// campaign was aborted while waiting on the breaker; the caller's worker
// should stop scanning.
func (c *campaign) scanStep(eng *engine, shard int, rec *trace.Recorder, d *websim.Domain, key string, pos int) (res DomainResult, ok bool) {
	// The breaker serialises decisions in canonical domain order per
	// group; batches are dispatched and processed in ascending index
	// order, so waits are only ever on strictly-earlier indices and
	// cannot deadlock.
	var dec resilience.Decision
	if key != "" {
		dec = c.br.Acquire(key, pos)
		if dec.Aborted {
			return DomainResult{}, false
		}
		if dec.Probe {
			c.tm.breakerProbes.Inc()
		}
		if rec != nil && (dec.State != resilience.StateClosed || dec.Probe) {
			// Queued for the next Begin: the engine opens the trace, but the
			// breaker verdict is campaign-layer context worth keeping on it.
			rec.Pending("breaker", dec.State.String())
		}
	}
	res, fromCheckpoint := replayResult(c.replayed, c.cfg, d)
	if fromCheckpoint {
		c.tm.resumed.Inc()
		if rec != nil {
			rec.Event(d.Name, (*eng).clockNow(), traceOutcome(&res), "source", "checkpoint")
		}
	} else if dec.Skip {
		res = breakerSkipResult(d)
		c.tm.breakerSkipped.Inc()
		if rec != nil {
			rec.Event(d.Name, (*eng).clockNow(), traceOutcome(&res), "source", "breaker-skip")
		}
	} else {
		var panicked bool
		res, panicked = scanSafely(*eng, c.cfg, d)
		if panicked {
			c.tm.panics.Inc()
			// Commit the partial trace the panic unwound through and dump
			// the flight recorder so the postmortem keeps the victim's
			// stage spans. No-ops when the panic hit before Begin.
			rec.Error(res.Conns[0].Err)
			rec.Abort("panic")
		}
		if panicked || !(*eng).healthy() {
			// The engine's loop or internal state cannot be trusted after
			// a panic or stall: rebuild it. Per-domain rng derivation
			// keeps every other domain's result unchanged.
			*eng = buildEngine(c.w, c.cfg, newEngineRng(c.cfg, shard), c.tm, rec)
		}
	}
	if key != "" {
		// Replayed results report the same outcome their live scan did,
		// so the breaker replays to the same state.
		switch ev := c.br.Record(key, pos, domainOutcome(&res, c.cfg)); {
		case ev.Opened:
			c.tm.breakerOpen.Inc()
			c.tm.breakerGroups.Add(1)
		case ev.Closed:
			c.tm.breakerGroups.Add(-1)
		}
	}
	c.tm.recordDomain(&res)
	if c.journal != nil && !fromCheckpoint {
		if err := c.journal.Append(shard, checkpointKey(c.cfg, d.Name), &res); err != nil {
			// Checkpointing is an optimisation: count the failure, surface
			// the degraded state, keep scanning. Degraded fast-fails are
			// tallied separately (journal_appends_skipped) so the error
			// counter tracks real storage failures.
			if !errors.Is(err, resilience.ErrJournalDegraded) {
				c.tm.checkpointErrors.Inc()
			}
		}
		c.tm.checkpointDegraded.Set(boolGauge(c.journal.Degraded()))
	}
	if n := c.completed.Add(1); c.cfg.InterruptAfter > 0 && n >= c.cfg.InterruptAfter {
		c.interrupt()
	}
	return res, true
}

// worker scans batches until the work channel closes. After an interrupt it
// keeps draining the channel (emitting truncated batches without scanning)
// so the generator can never block on a send forever.
func (c *campaign) worker(shard int, work <-chan domainBatch, results chan<- resultBatch) {
	c.tm.workersActive.Add(1)
	defer c.tm.workersActive.Add(-1)
	rec := c.cfg.Trace.Recorder(shard)
	eng := buildEngine(c.w, c.cfg, newEngineRng(c.cfg, shard), c.tm, rec)
	for b := range work {
		rb := resultBatch{start: b.start, dispatched: len(b.domains)}
		rb.results = make([]DomainResult, 0, len(b.domains))
		for j, d := range b.domains {
			if c.interrupted.Load() {
				break
			}
			key, pos := "", 0
			if b.keys != nil {
				key, pos = b.keys[j], b.pos[j]
			}
			res, ok := c.scanStep(&eng, shard, rec, d, key, pos)
			if !ok {
				break
			}
			rb.results = append(rb.results, res)
		}
		results <- rb
	}
}

// runPipeline executes the streaming campaign: a generator synthesises
// domains on demand in canonical order (lazy worlds never materialise
// their population), a worker pool scans them, and deliver consumes
// finished batches on the caller's goroutine in completion order. Memory
// stays bounded by workers + channel capacities, independent of the
// population size.
func (c *campaign) runPipeline(deliver func(rb *resultBatch)) {
	lo, n := c.bounds()
	nw := c.cfg.workers()
	if nw > n-lo {
		nw = 1
	}
	work := make(chan domainBatch, nw)
	results := make(chan resultBatch, nw)
	var gateNext map[string]int
	if c.br != nil {
		gateNext = map[string]int{}
	}
	go func() {
		defer close(work)
		for start := lo; start < n && !c.interrupted.Load(); start += streamBatchSize {
			end := min(start+streamBatchSize, n)
			b := domainBatch{start: start, domains: make([]*websim.Domain, 0, end-start)}
			if gateNext != nil {
				b.keys = make([]string, 0, end-start)
				b.pos = make([]int, 0, end-start)
			}
			for i := start; i < end; i++ {
				d := c.w.DomainAt(i)
				b.domains = append(b.domains, d)
				if gateNext != nil {
					key := breakerKey(c.w, c.cfg, d)
					p := 0
					if key != "" {
						p = gateNext[key]
						gateNext[key]++
					}
					b.keys = append(b.keys, key)
					b.pos = append(b.pos, p)
				}
			}
			work <- b
		}
	}()
	var wg sync.WaitGroup
	for shard := 0; shard < nw; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			c.worker(shard, work, results)
		}(shard)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	delivered := 0
	var lastMem time.Time
	for rb := range results {
		deliver(&rb)
		delivered += len(rb.results)
		el := time.Since(c.started)
		if el > 0 {
			c.tm.domainsPerSec.Set(int64(float64(delivered) / el.Seconds()))
		}
		// Keep the allocation gauges live for mid-scan scrapes, but
		// throttle ReadMemStats (it stops the world) to once a second.
		if c.cfg.Telemetry != nil && time.Since(lastMem) >= time.Second {
			lastMem = time.Now()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			c.tm.allocBytes.Set(int64(m.TotalAlloc - c.memStart.TotalAlloc))
			c.tm.allocObjects.Set(int64(m.Mallocs - c.memStart.Mallocs))
		}
	}
}

// RunStream executes a measurement campaign and hands every DomainResult
// to sink in canonical population order, without retaining earlier
// results: peak memory is bounded by the worker pool and a small reorder
// buffer regardless of population size. Pair it with a lazy world
// (websim.GenerateLazy) and the analysis accumulators for end-to-end
// bounded-memory campaigns.
//
// sink runs on the caller's goroutine. A non-nil sink error stops the
// campaign and is returned. When the campaign is interrupted, sink
// receives the longest completed prefix of the population and RunStream
// returns ErrInterrupted; completed domains beyond the first gap are in
// the checkpoint journal (when configured) but are not delivered.
func RunStream(w *websim.World, cfg Config, sink func(i int, res *DomainResult) error) error {
	c, err := newCampaign(w, cfg)
	if err != nil {
		return err
	}
	defer c.close()
	pending := map[int]resultBatch{}
	next, _ := c.bounds() // start index of the next batch to deliver
	stopped := false
	var sinkErr error
	c.runPipeline(func(rb *resultBatch) {
		pending[rb.start] = *rb
		for {
			b, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			for j := range b.results {
				if stopped {
					break
				}
				if err := sink(b.start+j, &b.results[j]); err != nil {
					sinkErr = err
					stopped = true
					c.interrupt()
				}
			}
			if len(b.results) < b.dispatched {
				stopped = true // interrupted mid-batch: a gap follows
			}
			next = b.start + b.dispatched
		}
	})
	c.finish()
	if sinkErr != nil {
		return sinkErr
	}
	if c.interrupted.Load() {
		return ErrInterrupted
	}
	return nil
}
