package scanner

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/qlog"
)

// This file serialises scan results as qlog traces (one per connection)
// and reads them back — the interchange format of the paper's pipeline:
// the authors captured extended qlog from quic-go and post-processed the
// packet_received events (§3.2.1, §3.3).

// connQlogHeader builds the trace header for one connection.
func connQlogHeader(d *DomainResult, c *ConnResult, week int, ipv6 bool, ref time.Time) qlog.TraceHeader {
	cf := map[string]string{
		"domain":    d.Domain,
		"tld":       d.TLD,
		"toplist":   strconv.FormatBool(d.Toplist),
		"resolved":  strconv.FormatBool(d.Resolved),
		"target":    c.Target,
		"ip":        c.IP.String(),
		"hop":       strconv.Itoa(c.Hop),
		"week":      strconv.Itoa(week),
		"ipv6":      strconv.FormatBool(ipv6),
		"quic":      strconv.FormatBool(c.QUIC),
		"status":    strconv.Itoa(c.Status),
		"server":    c.Server,
		"zero_pkts": strconv.Itoa(c.ZeroPkts),
		"one_pkts":  strconv.Itoa(c.OnePkts),
	}
	if c.Err != "" {
		cf["error"] = c.Err
	}
	if c.Redirect != "" {
		cf["redirect"] = c.Redirect
	}
	return qlog.TraceHeader{
		Title:         "quicspin scan",
		VantagePoint:  "client",
		ReferenceTime: ref,
		CommonFields:  cf,
	}
}

// WriteConnQlog serialises one connection of a scanned domain as a qlog
// trace.
func WriteConnQlog(w io.Writer, d *DomainResult, connIdx, week int, ipv6 bool) error {
	c := &d.Conns[connIdx]
	ref := campaignStart(week)
	qw, err := qlog.NewWriter(w, connQlogHeader(d, c, week, ipv6, ref), false)
	if err != nil {
		return err
	}
	for _, ob := range c.Observations {
		spin := ob.Spin
		hdr := qlog.PacketHeader{PacketType: "1RTT", PacketNumber: ob.PN, SpinBit: &spin}
		if ob.VEC != 0 {
			vec := ob.VEC
			hdr.VEC = &vec
		}
		if err := qw.PacketReceived(ob.T, hdr, 0); err != nil {
			return err
		}
	}
	at := ref
	for _, s := range c.StackRTTs {
		at = at.Add(time.Millisecond)
		if err := qw.MetricsUpdated(at, qlog.MetricsEvent{
			LatestRTTMs: float64(s) / float64(time.Millisecond),
		}); err != nil {
			return err
		}
	}
	return qw.Close()
}

// ReadConnQlog parses a trace written by WriteConnQlog, reconstructing the
// domain context and connection record.
func ReadConnQlog(r io.Reader) (*DomainResult, *ConnResult, int, bool, error) {
	tr, err := qlog.Parse(r)
	if err != nil {
		return nil, nil, 0, false, err
	}
	cf := tr.Header.CommonFields
	get := func(k string) string { return cf[k] }
	geti := func(k string) int {
		v, err := strconv.Atoi(get(k))
		if err != nil {
			return 0
		}
		return v
	}
	getb := func(k string) bool { return get(k) == "true" }

	d := &DomainResult{
		Domain:   get("domain"),
		TLD:      get("tld"),
		Toplist:  getb("toplist"),
		Resolved: getb("resolved"),
		DNSErr:   "",
	}
	if d.Domain == "" {
		return nil, nil, 0, false, fmt.Errorf("scanner: qlog trace lacks domain common field")
	}
	c := &ConnResult{
		Target:   get("target"),
		Hop:      geti("hop"),
		QUIC:     getb("quic"),
		Status:   geti("status"),
		Server:   get("server"),
		Err:      get("error"),
		Redirect: get("redirect"),
		ZeroPkts: geti("zero_pkts"),
		OnePkts:  geti("one_pkts"),
	}
	if ip, err := netip.ParseAddr(get("ip")); err == nil {
		c.IP = ip
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Name {
		case qlog.EventPacketReceived:
			p, err := ev.Packet()
			if err != nil {
				return nil, nil, 0, false, err
			}
			ob := core.Observation{T: tr.Time(i), PN: p.Header.PacketNumber}
			if p.Header.SpinBit != nil {
				ob.Spin = *p.Header.SpinBit
			}
			if p.Header.VEC != nil {
				ob.VEC = *p.Header.VEC
			}
			c.Observations = append(c.Observations, ob)
		case qlog.EventMetricsUpdated:
			m, err := ev.Metrics()
			if err != nil {
				return nil, nil, 0, false, err
			}
			c.StackRTTs = append(c.StackRTTs,
				time.Duration(m.LatestRTTMs*float64(time.Millisecond)))
		}
	}
	return d, c, geti("week"), getb("ipv6"), nil
}

// WriteResultQlogs writes one qlog file per connection under open(name).
// The open callback abstracts the filesystem so tests can collect buffers.
func WriteResultQlogs(res *Result, open func(name string) (io.WriteCloser, error)) error {
	for i := range res.Domains {
		d := &res.Domains[i]
		for j := range d.Conns {
			name := fmt.Sprintf("%s.conn%d.week%d.qlog", d.Domain, j, res.Week)
			w, err := open(name)
			if err != nil {
				return err
			}
			if err := WriteConnQlog(w, d, j, res.Week, res.IPv6); err != nil {
				w.Close()
				return fmt.Errorf("scanner: writing %s: %w", name, err)
			}
			if err := w.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// MergeQlogConns reassembles one Result per campaign week from
// individually parsed traces, grouping connections by domain within each
// week. Results are sorted by week.
func MergeQlogConns(readers []io.Reader) ([]*Result, error) {
	type key struct {
		week int
		ipv6 bool
	}
	results := map[key]*Result{}
	byDomain := map[key]map[string]int{}
	for _, r := range readers {
		d, c, week, ipv6, err := ReadConnQlog(r)
		if err != nil {
			return nil, err
		}
		k := key{week, ipv6}
		res := results[k]
		if res == nil {
			res = &Result{Week: week, IPv6: ipv6}
			results[k] = res
			byDomain[k] = map[string]int{}
		}
		idx, ok := byDomain[k][d.Domain]
		if !ok {
			idx = len(res.Domains)
			byDomain[k][d.Domain] = idx
			res.Domains = append(res.Domains, *d)
		}
		res.Domains[idx].Conns = append(res.Domains[idx].Conns, *c)
	}
	out := make([]*Result, 0, len(results))
	for _, res := range results {
		// Restore the redirect-chain order regardless of file iteration
		// order.
		for i := range res.Domains {
			conns := res.Domains[i].Conns
			sort.Slice(conns, func(a, b int) bool { return conns[a].Hop < conns[b].Hop })
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Week != out[j].Week {
			return out[i].Week < out[j].Week
		}
		return !out[i].IPv6 && out[j].IPv6
	})
	return out, nil
}
