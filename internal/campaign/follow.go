// Package campaign runs continuous measurement campaigns: the follow-mode
// scheduler behind `spinscan -follow` scans week after week in virtual
// time through the streaming scanner, feeding rolling checkpoint journals
// and the live dashboard indefinitely while staying byte-identical to the
// equivalent one-shot multi-week run.
package campaign

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/websim"
)

// Config drives one Follow run.
type Config struct {
	// World is the population under measurement.
	World *websim.World
	// Base is the per-week scanner configuration template; Follow sets
	// Week, Seed and Resume per attempt. Base.Interrupt stops the
	// scheduler between domains; Base.Checkpoint (optional) is the rolling
	// journal every week shares.
	Base scanner.Config
	// SeedBase derives each week's scan seed as SeedBase + week — the same
	// derivation the one-shot multi-week loop uses, which is what makes
	// follow-mode results comparable (and byte-identical) to it.
	SeedBase int64
	// StartWeek is the first week scanned; zero means 1.
	StartWeek int
	// MaxWeeks bounds the campaign; zero means run until interrupted.
	MaxWeeks int
	// Interval is the virtual pause between consecutive weeks (a service
	// nicety for real deployments; smoke tests leave it 0). The wait is
	// interruptible.
	Interval time.Duration
	// Live, when non-nil, receives every delivery for the dashboard.
	Live *analysis.Live
	// WeekRestarts is the per-week retry budget: a week whose scan fails
	// (not an interrupt) is retried from the journal this many times — with
	// a fresh week-isolated accumulator, so a crashed attempt can never
	// pollute the campaign — before Follow gives up. Zero means 2.
	WeekRestarts int
	// RetainWeeks, with a checkpoint journal, prunes records older than
	// the last N weeks during the between-weeks compaction; zero keeps
	// everything. Pruning trades rescan time on resume for bounded disk —
	// results are unaffected either way (scans are deterministic).
	RetainWeeks int
	// Compact runs a journal compaction after every completed week,
	// bounding journal growth to ~one record per live key. Implied by
	// RetainWeeks > 0.
	Compact bool
	// Reconfigure, when non-nil, runs before each week's scan and may
	// adjust the week's scanner config in place (the SIGHUP-reloaded
	// breaker settings hook). Changes apply at week granularity: a scan in
	// flight is never reconfigured.
	Reconfigure func(cfg *scanner.Config)
	// OnWeek, when non-nil, runs after each week merges into the campaign
	// (progress logging, table snapshots).
	OnWeek func(week int, camp *analysis.CampaignAccumulator)
	// Logf logs scheduler decisions; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Result is a finished (or interrupted) follow campaign.
type Result struct {
	// Campaign holds every completed week, byte-identical to the one-shot
	// equivalent.
	Campaign *analysis.CampaignAccumulator
	// WeeksDone counts completed weeks; LastWeek is the last one merged.
	WeeksDone, LastWeek int
	// Restarts counts failed week attempts that were retried from the
	// journal.
	Restarts int
	// Interrupted reports the campaign stopped on Base.Interrupt; the
	// in-flight week (if any) was abandoned to the journal for resume.
	Interrupted bool
	// Compactions aggregates the between-weeks journal compactions.
	Compactions resilience.CompactStats
}

// Follow runs the continuous campaign: week after week through
// scanner.RunStream until MaxWeeks weeks completed or Base.Interrupt
// fires.
//
// Each week scans into a fresh week-isolated CampaignAccumulator that is
// merged into the campaign only on success, so a failed attempt — worker
// panic storm, poisoned engine, storage chaos — leaves no partial state
// behind; the retry resumes from the checkpoint journal and rebuilds the
// week deterministically. Between weeks the journal is compacted and
// pruned to the retention horizon. The merged result is byte-identical to
// the one-shot `-weeks N` run in every rendered table
// (TestFollowMatchesOneShot pins this, with and without storage faults).
func Follow(cfg Config) (*Result, error) {
	if cfg.World == nil {
		return nil, errors.New("campaign: Follow requires a World")
	}
	if cfg.Base.Shard != (scanner.ShardRange{}) {
		return nil, errors.New("campaign: Follow drives the unsharded streaming path (shard ranges are a coordinator concern)")
	}
	first := cfg.StartWeek
	if first <= 0 {
		first = 1
	}
	res := &Result{Campaign: analysis.NewCampaignAccumulator()}
	for wk := first; cfg.MaxWeeks <= 0 || wk < first+cfg.MaxWeeks; wk++ {
		if wk > first && !sleepInterruptible(cfg.Interval, cfg.Base.Interrupt) {
			res.Interrupted = true
			return res, nil
		}
		wcfg := cfg.Base
		wcfg.Week = wk
		wcfg.Seed = cfg.SeedBase + int64(wk)
		if cfg.Reconfigure != nil {
			cfg.Reconfigure(&wcfg)
		}
		interrupted, err := runWeek(&cfg, wcfg, res)
		if err != nil {
			return res, err
		}
		if interrupted {
			res.Interrupted = true
			return res, nil
		}
		res.WeeksDone++
		res.LastWeek = wk
		if cfg.OnWeek != nil {
			cfg.OnWeek(wk, res.Campaign)
		}
		if err := compactBetweenWeeks(&cfg, wk, res); err != nil {
			// Compaction failure is a storage problem, not a campaign
			// problem: the journal is still replay-consistent (Compact is
			// crash-safe), so log and scan on.
			cfg.logf("campaign: week %d journal compaction: %v (journal unchanged; continuing)", wk, err)
		}
	}
	return res, nil
}

// runWeek scans one week, retrying from the journal within the restart
// budget. Only a successful attempt merges into the campaign.
func runWeek(cfg *Config, wcfg scanner.Config, res *Result) (interrupted bool, err error) {
	restarts := cfg.WeekRestarts
	if restarts <= 0 {
		restarts = 2
	}
	for attempt := 0; ; attempt++ {
		// A week-isolated accumulator: merged on success, dropped on
		// failure. StartWeek wires the week into the attempt's own
		// longitudinal fold; CampaignAccumulator.Merge rewires it into the
		// campaign's.
		attemptCamp := analysis.NewCampaignAccumulator()
		acc := attemptCamp.StartWeek(wcfg.Week, wcfg.IPv6, cfg.World.ASDB())
		err := scanner.RunStream(cfg.World, wcfg, cfg.Live.Sink(acc))
		switch {
		case err == nil:
			if merr := res.Campaign.Merge(attemptCamp); merr != nil {
				return false, fmt.Errorf("campaign: merge week %d: %w", wcfg.Week, merr)
			}
			return false, nil
		case errors.Is(err, scanner.ErrInterrupted):
			// Graceful shutdown: completed domains are in the journal (when
			// configured); the week is abandoned for a later -resume.
			return true, nil
		case attempt < restarts:
			res.Restarts++
			cfg.logf("campaign: week %d attempt %d failed: %v (restarting from journal, %d restart(s) left)",
				wcfg.Week, attempt+1, err, restarts-attempt)
			if wcfg.Checkpoint != "" {
				// Resume skips everything the failed attempt journaled; with
				// no journal the retry simply rescans, deterministically.
				wcfg.Resume = true
			}
		default:
			return false, fmt.Errorf("campaign: week %d failed after %d attempts: %w", wcfg.Week, attempt+1, err)
		}
	}
}

// compactBetweenWeeks rewrites the journal down to its live records after
// a completed week, pruning weeks outside the retention horizon. RunStream
// has closed the week's journal handle by the time this runs, so Compact's
// no-concurrent-writers requirement holds.
func compactBetweenWeeks(cfg *Config, wk int, res *Result) error {
	if cfg.Base.Checkpoint == "" || (!cfg.Compact && cfg.RetainWeeks <= 0) {
		return nil
	}
	var retain func(string) bool
	if cfg.RetainWeeks > 0 {
		oldest := wk - cfg.RetainWeeks + 1
		retain = func(key string) bool { return keyWeek(key) >= oldest }
	}
	cs, err := resilience.Compact(cfg.Base.Journal.FS, cfg.Base.Checkpoint, retain)
	if err != nil {
		return err
	}
	res.Compactions.Segments += cs.Segments
	res.Compactions.Records += cs.Records
	res.Compactions.Kept += cs.Kept
	res.Compactions.Dropped += cs.Dropped
	res.Compactions.Torn += cs.Torn
	res.Compactions.Bytes += cs.Bytes
	cfg.logf("campaign: week %d compaction: %d segment(s), %d record(s) -> %d kept, %d pruned",
		wk, cs.Segments, cs.Records, cs.Kept, cs.Dropped)
	return nil
}

// keyWeek parses the week out of a checkpoint key ("w12/v4/domain"); keys
// that do not carry one report -1 (and are always pruned by a retention
// filter, since they cannot belong to any live week).
func keyWeek(key string) int {
	if len(key) < 2 || key[0] != 'w' {
		return -1
	}
	rest := key[1:]
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 {
		return -1
	}
	wk, err := strconv.Atoi(rest[:slash])
	if err != nil {
		return -1
	}
	return wk
}

// sleepInterruptible waits d (no-op when non-positive) and reports false
// when interrupt fired instead.
func sleepInterruptible(d time.Duration, interrupt <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-interrupt:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-interrupt:
		return false
	case <-t.C:
		return true
	}
}
