package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"quicspin/internal/analysis"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/telemetry"
	"quicspin/internal/websim"
)

var (
	fixOnce  sync.Once
	fixState *websim.World
)

func fixture(t *testing.T) *websim.World {
	t.Helper()
	fixOnce.Do(func() {
		p := websim.DefaultProfile()
		p.Scale = 200_000
		fixState = websim.Generate(p)
	})
	return fixState
}

// renderCampaign renders everything follow mode must reproduce
// byte-for-byte against the one-shot loop: Tables 1–5 per week, the Fig. 2
// longitudinal histogram, and the Fig. 3/4 accuracy reports.
func renderCampaign(c *analysis.CampaignAccumulator) string {
	var b strings.Builder
	b.WriteString(analysis.RenderLongitudinal(c.Longitudinal()).String())
	b.WriteString(c.RenderAccuracy(3))
	b.WriteString(c.RenderAccuracy(4))
	for _, a := range c.Weeks() {
		b.WriteString(a.RenderOverview().String())
		b.WriteString(a.RenderOrgTable(8).String())
		b.WriteString(a.RenderSpinConfig().String())
		b.WriteString(a.RenderSoftwareTable().String())
		b.WriteString(a.RenderErrorClasses().String())
	}
	return b.String()
}

// oneShot replicates spinscan's one-shot `-weeks N` loop: one shared
// CampaignAccumulator, StartWeek + RunStream per week.
func oneShot(t *testing.T, w *websim.World, base scanner.Config, seedBase int64, weeks int) *analysis.CampaignAccumulator {
	t.Helper()
	camp := analysis.NewCampaignAccumulator()
	for wk := 1; wk <= weeks; wk++ {
		cfg := base
		cfg.Week = wk
		cfg.Seed = seedBase + int64(wk)
		acc := camp.StartWeek(wk, cfg.IPv6, w.ASDB())
		if err := scanner.RunStream(w, cfg, acc.Sink()); err != nil {
			t.Fatalf("one-shot week %d: %v", wk, err)
		}
	}
	return camp
}

// TestFollowMatchesOneShot is the tentpole determinism proof: `-follow`
// stopped after N weeks is byte-identical to the one-shot `-weeks N` run —
// both engines, 1 and 4 workers, with and without storage faults on the
// follow side (the reference never journals at all).
func TestFollowMatchesOneShot(t *testing.T) {
	w := fixture(t)
	const seedBase, weeks = 7, 3
	for _, eng := range []struct {
		name string
		e    scanner.Engine
	}{{"emulated", scanner.EngineEmulated}, {"fast", scanner.EngineFast}} {
		for _, workers := range []int{1, 4} {
			for _, faults := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/faults=%v", eng.name, workers, faults)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					base := scanner.Config{Engine: eng.e, Workers: workers}
					want := renderCampaign(oneShot(t, w, base, seedBase, weeks))

					fb := base
					if faults {
						fb.Checkpoint = t.TempDir()
						fb.Journal = resilience.JournalConfig{
							FS: resilience.NewFaultFS(nil, resilience.StorageFaultPlan{
								Seed: 11, ShortWrite: 0.1, WriteErr: 0.1, SyncErr: 0.1, OpenErr: 0.05,
							}),
							SegmentBytes: 4096,
							SyncEvery:    8,
						}
					}
					res, err := Follow(Config{
						World: w, Base: fb, SeedBase: seedBase, MaxWeeks: weeks,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.WeeksDone != weeks || res.Interrupted {
						t.Fatalf("follow: %d weeks done (interrupted=%v), want %d", res.WeeksDone, res.Interrupted, weeks)
					}
					if got := renderCampaign(res.Campaign); got != want {
						t.Errorf("follow tables diverge from one-shot (-want +got):\n%s", diffHead(want, got))
					}
				})
			}
		}
	}
}

// diffHead returns the first diverging lines of two renderings.
func diffHead(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length: want %d lines, got %d", len(wl), len(gl))
}

// TestFollowChaosCampaign is the acceptance chaos run: a full storage
// fault plan (ENOSPC + EIO + fsync failure + torn writes) hot enough to
// trip the degraded state, with telemetry attached. The campaign must
// finish all weeks, raise checkpoint_degraded and checkpoint_errors_total,
// record zero panics, and still produce byte-identical tables.
func TestFollowChaosCampaign(t *testing.T) {
	w := fixture(t)
	const seedBase, weeks = 7, 3
	base := scanner.Config{Engine: scanner.EngineFast, Workers: 4}
	want := renderCampaign(oneShot(t, w, base, seedBase, weeks))

	reg := telemetry.New()
	fb := base
	fb.Telemetry = reg
	fb.Checkpoint = t.TempDir()
	fs := resilience.NewFaultFS(nil, resilience.StorageFaultPlan{
		Seed: 3, ShortWrite: 0.2, WriteErr: 0.35, SyncErr: 0.3, OpenErr: 0.2,
	})
	fb.Journal = resilience.JournalConfig{
		FS: fs, SegmentBytes: 2048, SyncEvery: 4, DegradeAfter: 3, ProbeEvery: 8,
	}
	res, err := Follow(Config{
		World: w, Base: fb, SeedBase: seedBase, MaxWeeks: weeks,
		Compact: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeeksDone != weeks {
		t.Fatalf("chaos campaign finished %d weeks, want %d", res.WeeksDone, weeks)
	}
	if got := renderCampaign(res.Campaign); got != want {
		t.Errorf("chaos tables diverge from fault-free reference:\n%s", diffHead(want, got))
	}
	if fs.Injected() == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if v := reg.Counter("scan_panics_total").Value(); v != 0 {
		t.Errorf("scan_panics_total = %d, want 0", v)
	}
	if v := reg.Counter("checkpoint_errors_total").Value(); v == 0 {
		t.Error("checkpoint_errors_total = 0 despite storage chaos")
	}
	// With WriteErr at 0.35 the degraded breaker must have tripped; the
	// gauge may have cleared again if a probe landed near the end, so
	// accept either it being raised now or the skip counter proving it was.
	degraded := reg.Gauge("scan_checkpoint_degraded").Value() == 1
	skipped := reg.Gauge("journal_appends_skipped").Value() > 0
	if !degraded && !skipped {
		t.Error("degraded state never raised: scan_checkpoint_degraded = 0 and journal_appends_skipped = 0")
	}
}

// TestFollowInterruptResume: SIGTERM-style interrupt mid-week-2, then a
// resumed follow run completes the campaign byte-identically.
func TestFollowInterruptResume(t *testing.T) {
	w := fixture(t)
	const seedBase, weeks = 7, 3
	base := scanner.Config{Engine: scanner.EngineFast, Workers: 4}
	want := renderCampaign(oneShot(t, w, base, seedBase, weeks))

	dir := t.TempDir()
	fb := base
	fb.Checkpoint = dir
	n := int64(w.NumDomains())
	res, err := Follow(Config{
		World: w, Base: fb, SeedBase: seedBase, MaxWeeks: weeks,
		Reconfigure: func(cfg *scanner.Config) {
			if cfg.Week == 2 {
				cfg.InterruptAfter = n / 2 // die mid-week-2
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.WeeksDone != 1 {
		t.Fatalf("interrupted run: weeksDone=%d interrupted=%v, want 1/true", res.WeeksDone, res.Interrupted)
	}

	rb := base
	rb.Checkpoint = dir
	rb.Resume = true
	res2, err := Follow(Config{World: w, Base: rb, SeedBase: seedBase, MaxWeeks: weeks})
	if err != nil {
		t.Fatal(err)
	}
	if res2.WeeksDone != weeks {
		t.Fatalf("resumed run finished %d weeks, want %d", res2.WeeksDone, weeks)
	}
	if got := renderCampaign(res2.Campaign); got != want {
		t.Errorf("resumed follow tables diverge:\n%s", diffHead(want, got))
	}
}

// TestFollowRetention: between-weeks compaction prunes journal records
// outside the retention horizon without touching the results.
func TestFollowRetention(t *testing.T) {
	w := fixture(t)
	const seedBase, weeks = 7, 3
	base := scanner.Config{Engine: scanner.EngineFast, Workers: 2}
	want := renderCampaign(oneShot(t, w, base, seedBase, weeks))

	dir := t.TempDir()
	fb := base
	fb.Checkpoint = dir
	res, err := Follow(Config{
		World: w, Base: fb, SeedBase: seedBase, MaxWeeks: weeks, RetainWeeks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderCampaign(res.Campaign); got != want {
		t.Errorf("retention-pruned follow tables diverge:\n%s", diffHead(want, got))
	}
	if res.Compactions.Dropped == 0 {
		t.Error("retention compaction dropped nothing across 3 weeks")
	}
	replayed, _, err := resilience.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != w.NumDomains() {
		t.Errorf("journal holds %d records after retention, want %d (week 3 only)", len(replayed), w.NumDomains())
	}
	for key := range replayed {
		if keyWeek(key) != weeks {
			t.Fatalf("stale key %q survived RetainWeeks=1", key)
		}
	}
}

// flakyReadDirFS fails the first ReadDir call (the journal open of week
// 1's first attempt), so the scheduler's restart budget gets exercised
// with a recovery.
type flakyReadDirFS struct {
	resilience.FS
	mu    sync.Mutex
	fails int
}

func (f *flakyReadDirFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fails > 0 {
		f.fails--
		return nil, errors.New("readdir: transient storage failure (injected)")
	}
	return f.FS.ReadDir(dir)
}

// TestFollowWeekRestartRecovers: a week attempt that fails outright is
// retried from the journal and the campaign still matches one-shot.
func TestFollowWeekRestartRecovers(t *testing.T) {
	w := fixture(t)
	const seedBase, weeks = 7, 2
	base := scanner.Config{Engine: scanner.EngineFast, Workers: 2}
	want := renderCampaign(oneShot(t, w, base, seedBase, weeks))

	fb := base
	fb.Checkpoint = t.TempDir()
	fb.Journal = resilience.JournalConfig{FS: &flakyReadDirFS{FS: resilience.OSFS, fails: 1}}
	res, err := Follow(Config{
		World: w, Base: fb, SeedBase: seedBase, MaxWeeks: weeks, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if got := renderCampaign(res.Campaign); got != want {
		t.Errorf("restarted follow tables diverge:\n%s", diffHead(want, got))
	}
}

// TestFollowRestartBudgetExhausted: a week that keeps failing consumes the
// budget and surfaces the underlying error.
func TestFollowRestartBudgetExhausted(t *testing.T) {
	w := fixture(t)
	fb := scanner.Config{Engine: scanner.EngineFast, Workers: 2}
	fb.Checkpoint = t.TempDir()
	fb.Journal = resilience.JournalConfig{FS: &flakyReadDirFS{FS: resilience.OSFS, fails: 1 << 30}}
	res, err := Follow(Config{
		World: w, Base: fb, SeedBase: 7, MaxWeeks: 2, WeekRestarts: 2, Logf: t.Logf,
	})
	if err == nil {
		t.Fatal("follow succeeded with permanently dead storage metadata")
	}
	if !strings.Contains(err.Error(), "week 1 failed after 3 attempts") {
		t.Errorf("err = %v, want week-1 budget exhaustion", err)
	}
	if res.WeeksDone != 0 || res.Restarts != 2 {
		t.Errorf("weeksDone=%d restarts=%d, want 0/2", res.WeeksDone, res.Restarts)
	}
}

// TestFollowRejectsShardRange: follow drives the unsharded path only.
func TestFollowRejectsShardRange(t *testing.T) {
	w := fixture(t)
	_, err := Follow(Config{
		World: w,
		Base:  scanner.Config{Engine: scanner.EngineFast, Shard: scanner.ShardRange{Start: 0, End: 5}},
	})
	if err == nil {
		t.Fatal("follow accepted a shard range")
	}
}

// TestKeyWeek covers the retention filter's key parser.
func TestKeyWeek(t *testing.T) {
	cases := []struct {
		key  string
		want int
	}{
		{"w12/v4/example.org", 12},
		{"w1/v6/a.b", 1},
		{"w/v4/x", -1},
		{"bogus", -1},
		{"", -1},
		{"wx/v4/y", -1},
	}
	for _, c := range cases {
		if got := keyWeek(c.key); got != c.want {
			t.Errorf("keyWeek(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

// TestParseTunables covers the SIGHUP-reloadable settings grammar.
func TestParseTunables(t *testing.T) {
	tn, err := ParseTunables(strings.NewReader(`
# runtime tunables
alerts            = error-rate<=0.05,domains-per-sec>=100
progress          = 30s
breaker-threshold = 5
breaker-cooldown  = 45s
`))
	if err != nil {
		t.Fatal(err)
	}
	if !tn.HasAlerts || tn.Alerts != "error-rate<=0.05,domains-per-sec>=100" {
		t.Errorf("alerts = %q (has=%v)", tn.Alerts, tn.HasAlerts)
	}
	if !tn.HasProgress || tn.Progress.Seconds() != 30 {
		t.Errorf("progress = %v (has=%v)", tn.Progress, tn.HasProgress)
	}
	if !tn.HasBreakerThreshold || tn.BreakerThreshold != 5 {
		t.Errorf("breaker-threshold = %d (has=%v)", tn.BreakerThreshold, tn.HasBreakerThreshold)
	}
	if !tn.HasBreakerCooldown || tn.BreakerCooldown.Seconds() != 45 {
		t.Errorf("breaker-cooldown = %v (has=%v)", tn.BreakerCooldown, tn.HasBreakerCooldown)
	}

	partial, err := ParseTunables(strings.NewReader("progress = 1m\n"))
	if err != nil {
		t.Fatal(err)
	}
	if partial.HasAlerts || partial.HasBreakerThreshold || partial.HasBreakerCooldown {
		t.Error("absent keys reported as present")
	}
	for _, bad := range []string{
		"nonsense\n", "unknown = 1\n", "progress = -5s\n",
		"breaker-threshold = x\n", "breaker-threshold = -1\n", "breaker-cooldown = nope\n",
	} {
		if _, err := ParseTunables(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTunables(%q) succeeded, want error", bad)
		}
	}
}
