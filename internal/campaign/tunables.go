package campaign

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Tunables are the runtime settings a long-running spinscan service can
// reload without restart (SIGHUP re-reads the -tunables file). Every field
// has a matching Has flag: only keys present in the file override the
// command line, so a partial file adjusts one knob and leaves the rest.
//
// File grammar: one `key = value` per line, '#' comments, blank lines
// ignored.
//
//	alerts            = error-rate<=0.05,domains-per-sec>=100
//	progress          = 30s
//	breaker-threshold = 5
//	breaker-cooldown  = 45s
//
// Alerts and progress apply at the next progress tick; breaker settings at
// the next week boundary (a scan in flight is never reconfigured).
type Tunables struct {
	Alerts    string
	HasAlerts bool

	Progress    time.Duration
	HasProgress bool

	BreakerThreshold    int
	HasBreakerThreshold bool

	BreakerCooldown    time.Duration
	HasBreakerCooldown bool
}

// ParseTunables reads the key = value tunables format.
func ParseTunables(r io.Reader) (*Tunables, error) {
	t := &Tunables{}
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("campaign: tunables line %d: want key = value, got %q", lineNo, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "alerts":
			// Validated by the caller's alert parser (it owns the registry);
			// an empty value clears all rules.
			t.Alerts, t.HasAlerts = val, true
		case "progress":
			t.Progress, err = time.ParseDuration(val)
			if err == nil && t.Progress < 0 {
				err = fmt.Errorf("must be >= 0")
			}
			t.HasProgress = true
		case "breaker-threshold":
			t.BreakerThreshold, err = strconv.Atoi(val)
			if err == nil && t.BreakerThreshold < 0 {
				err = fmt.Errorf("must be >= 0")
			}
			t.HasBreakerThreshold = true
		case "breaker-cooldown":
			t.BreakerCooldown, err = time.ParseDuration(val)
			if err == nil && t.BreakerCooldown < 0 {
				err = fmt.Errorf("must be >= 0")
			}
			t.HasBreakerCooldown = true
		default:
			return nil, fmt.Errorf("campaign: tunables line %d: unknown key %q", lineNo, key)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: tunables line %d: %s = %q: %v", lineNo, key, val, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read tunables: %w", err)
	}
	return t, nil
}

// LoadTunables reads a tunables file from disk.
func LoadTunables(path string) (*Tunables, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open tunables: %w", err)
	}
	defer f.Close()
	return ParseTunables(f)
}
