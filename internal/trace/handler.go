package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// tracesDoc is the JSON document served by the /debug/traces endpoint.
type tracesDoc struct {
	Recent    []*Trace         `json:"recent"`
	Exemplars ExemplarSnapshot `json:"exemplars"`
	Dumps     int64            `json:"dumps"`
}

// Handler serves the tracer's state:
//
//	/debug/traces              recent + exemplar traces as JSON
//	/debug/traces?format=text  a human-readable stage-span view
//	/debug/traces?n=50         cap the recent list (default 100)
//
// Safe to serve while a campaign is committing traces. A nil tracer
// serves an empty document (HTTP 200), so the endpoint can be registered
// unconditionally.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 100
		if q := req.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		doc := tracesDoc{
			Recent:    t.Recent(n),
			Exemplars: t.Exemplars(),
			Dumps:     t.LastDumpCount(),
		}
		if doc.Recent == nil {
			doc.Recent = []*Trace{}
		}
		if doc.Exemplars.Failed == nil {
			doc.Exemplars.Failed = map[string][]*Trace{}
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeTracesText(w, &doc)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&doc)
	})
}

// writeTracesText renders the human-readable view: one block per trace,
// one line per stage span with duration and attrs.
func writeTracesText(w http.ResponseWriter, doc *tracesDoc) {
	fmt.Fprintf(w, "flight dumps: %d\n\n", doc.Dumps)
	fmt.Fprintf(w, "== recent traces (%d)\n", len(doc.Recent))
	for _, t := range doc.Recent {
		writeTraceText(w, t)
	}
	fmt.Fprintf(w, "\n== slowest exemplars (%d)\n", len(doc.Exemplars.Slowest))
	for _, t := range doc.Exemplars.Slowest {
		writeTraceText(w, t)
	}
	classes := make([]string, 0, len(doc.Exemplars.Failed))
	for c := range doc.Exemplars.Failed {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(w, "\n== failed exemplars: %s (%d)\n", c, len(doc.Exemplars.Failed[c]))
		for _, t := range doc.Exemplars.Failed[c] {
			writeTraceText(w, t)
		}
	}
}

func writeTraceText(w http.ResponseWriter, t *Trace) {
	fmt.Fprintf(w, "%s worker=%d seq=%d outcome=%s dur=%s", t.Domain, t.Worker, t.Seq, t.Outcome, t.Duration())
	for _, a := range t.Attrs {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Value())
	}
	fmt.Fprintln(w)
	if t.Err != "" {
		fmt.Fprintf(w, "    err: %s\n", t.Err)
	}
	for _, sp := range t.Spans {
		fmt.Fprintf(w, "    %-10s +%-12s %-12s", sp.Stage, sp.Start.Sub(t.Start), sp.End.Sub(sp.Start))
		for _, a := range sp.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value())
		}
		fmt.Fprintln(w)
	}
}
