package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer owns the campaign's trace state: one Recorder per worker shard,
// the shared exemplar sampler, and the flight-recorder dump budget. A nil
// *Tracer is valid and hands out nil (no-op) Recorders, so instrumented
// code needs no enabled/disabled branches.
type Tracer struct {
	cfg Config

	mu   sync.Mutex
	recs map[int]*Recorder

	ex      *exemplarSet
	dumpSeq atomic.Int64
	dumps   atomic.Int64
}

// SyntheticWorkerBase is the top of the recorder-id range reserved for
// campaign-level event sources that are not scan workers (the shard
// supervisor records restart events under SyntheticWorkerBase - shard).
// Scan workers use ids >= 0; the two ranges never collide.
const SyntheticWorkerBase = -1

// New creates a Tracer. cfg zero values select defaults (see Config).
func New(cfg Config) *Tracer {
	return &Tracer{
		cfg:  cfg,
		recs: map[int]*Recorder{},
		ex:   newExemplarSet(cfg.exemplars()),
	}
}

// Recorder returns the recorder for one worker shard, creating it on
// first use; repeated calls (engine rebuilds, RunBatch restarts) return
// the same recorder so its flight ring survives. Returns nil (a no-op
// recorder) on a nil tracer.
func (t *Tracer) Recorder(worker int) *Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recs[worker]
	if r == nil {
		r = &Recorder{t: t, worker: worker, ring: make([]*Trace, t.cfg.ringSize())}
		t.recs[worker] = r
	}
	return r
}

// Exemplars returns the sampler's current state (cloned, caller-owned).
// Nil-safe.
func (t *Tracer) Exemplars() ExemplarSnapshot {
	if t == nil {
		return ExemplarSnapshot{}
	}
	return t.ex.snapshot()
}

// Recent returns up to max recent traces across all workers, newest
// first (cloned, caller-owned). max <= 0 means all retained traces.
func (t *Tracer) Recent(max int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	workers := make([]*Recorder, 0, len(t.recs))
	for _, r := range t.recs {
		workers = append(workers, r)
	}
	t.mu.Unlock()
	var all []*Trace
	for _, r := range workers {
		all = append(all, r.recent()...)
	}
	sortTracesNewestFirst(all)
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	return all
}

// Recorder builds and retains traces for one worker shard. The building
// side (Begin/Stage*/Attr*/End) is single-goroutine — the worker that owns
// the shard — while the committed ring is read concurrently by the
// dashboard, so ring access is mutex-protected. All methods are no-ops on
// a nil receiver and allocate nothing in that case.
type Recorder struct {
	t      *Tracer
	worker int

	// cur is the trace being built; owned by the worker goroutine.
	cur     *Trace
	pending []Attr // attrs queued before Begin (breaker state, replay)
	dump    string // non-empty: End triggers a flight dump with this reason
	seq     uint64

	// mu guards the committed ring and the freelist (the dashboard reads
	// the ring while the worker commits into it).
	mu   sync.Mutex
	ring []*Trace // fixed-size; ring[(head+i)%len] for i<n, oldest first
	head int
	n    int
	free []*Trace
}

// Begin opens a trace for one domain at the engine-clock instant `at`.
// Attrs queued with Pending/PendingInt are drained into the new trace.
func (r *Recorder) Begin(domain string, at time.Time) {
	if r == nil {
		return
	}
	if r.cur != nil {
		// A trace left open (engine bug) is committed as lost rather than
		// leaked; its End stays at the last known instant.
		r.commit("lost")
	}
	t := r.takeFree()
	t.Domain = domain
	t.Worker = r.worker
	t.Seq = r.seq
	r.seq++
	t.Start, t.End = at, at
	t.Attrs = append(t.Attrs, r.pending...)
	r.pending = r.pending[:0]
	r.cur = t
}

// Pending queues a string attr for the next Begin (used by the campaign
// layer, which learns breaker/replay context before the engine runs).
func (r *Recorder) Pending(key, val string) {
	if r == nil {
		return
	}
	r.pending = append(r.pending, Attr{Key: key, Str: val})
}

// Attr annotates the open trace with a string value.
func (r *Recorder) Attr(key, val string) {
	if r == nil || r.cur == nil {
		return
	}
	r.cur.Attrs = append(r.cur.Attrs, Attr{Key: key, Str: val})
}

// AttrInt annotates the open trace with an integer value.
func (r *Recorder) AttrInt(key string, val int64) {
	if r == nil || r.cur == nil {
		return
	}
	r.cur.Attrs = append(r.cur.Attrs, Attr{Key: key, Int: val})
}

// StageStart opens a new span. Spans are a flat sequence, not a stack: a
// span not closed by StageEnd stays zero-length at its start instant.
func (r *Recorder) StageStart(stage string, at time.Time) {
	if r == nil || r.cur == nil {
		return
	}
	// Reuse the recycled span slot in place so its attr slice keeps its
	// capacity (a plain append would overwrite it with nil and put span
	// attrs back on the heap every scan).
	spans := r.cur.Spans
	if len(spans) < cap(spans) {
		spans = spans[:len(spans)+1]
		sp := &spans[len(spans)-1]
		sp.Stage, sp.Start, sp.End = stage, at, at
		sp.Attrs = sp.Attrs[:0]
	} else {
		spans = append(spans, Span{Stage: stage, Start: at, End: at})
	}
	r.cur.Spans = spans
}

// StageEnd closes the open span at the given instant.
func (r *Recorder) StageEnd(at time.Time) {
	if r == nil || r.cur == nil {
		return
	}
	r.closeOpenSpanAt(at)
}

// SpanAttr annotates the most recent span with a string value.
func (r *Recorder) SpanAttr(key, val string) {
	if r == nil || r.cur == nil || len(r.cur.Spans) == 0 {
		return
	}
	sp := &r.cur.Spans[len(r.cur.Spans)-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: val})
}

// SpanAttrInt annotates the most recent span with an integer value.
func (r *Recorder) SpanAttrInt(key string, val int64) {
	if r == nil || r.cur == nil || len(r.cur.Spans) == 0 {
		return
	}
	sp := &r.cur.Spans[len(r.cur.Spans)-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Int: val})
}

// Error records the scan's error string on the open trace (first error
// wins; later calls with an empty string are no-ops).
func (r *Recorder) Error(errStr string) {
	if r == nil || r.cur == nil || errStr == "" || r.cur.Err != "" {
		return
	}
	r.cur.Err = errStr
}

// MarkDump requests a flight-recorder dump when the open trace commits
// (budget kills and stalls are detected mid-scan, but the dump should
// include the finished trace).
func (r *Recorder) MarkDump(reason string) {
	if r == nil || r.cur == nil {
		return
	}
	r.dump = reason
}

// End closes the open trace at the engine-clock instant `at` with the
// given outcome label, commits it to the flight ring and offers it to the
// exemplar sampler. A dump requested via MarkDump is written afterwards.
func (r *Recorder) End(at time.Time, outcome string) {
	if r == nil || r.cur == nil {
		return
	}
	r.closeOpenSpanAt(at)
	r.cur.End = at
	r.commit(outcome)
}

// Event records a complete zero-duration synthetic trace in one call:
// Begin at `at`, the given key/value string attrs (pairs; a trailing odd
// key is ignored), End with the outcome. It is how campaign-layer events
// that never ran an engine — checkpoint replays, breaker skips,
// supervisor restarts — enter the flight ring. Nil-safe.
func (r *Recorder) Event(domain string, at time.Time, outcome string, kv ...string) {
	if r == nil {
		return
	}
	r.Begin(domain, at)
	for i := 0; i+1 < len(kv); i += 2 {
		r.Attr(kv[i], kv[i+1])
	}
	r.End(at, outcome)
}

// Abort commits a partially built trace (panic unwound through the
// engine before End could run) with the given outcome, then dumps the
// flight recorder with the same reason. No-op when no trace is open.
func (r *Recorder) Abort(reason string) {
	if r == nil || r.cur == nil {
		return
	}
	r.dump = reason
	r.commit(reason)
}

// Active reports whether a trace is currently open.
func (r *Recorder) Active() bool { return r != nil && r.cur != nil }

// closeOpenSpanAt sets the last span's end (spans are closed in order).
func (r *Recorder) closeOpenSpanAt(at time.Time) {
	if n := len(r.cur.Spans); n > 0 {
		sp := &r.cur.Spans[n-1]
		if at.After(sp.End) {
			sp.End = at
		}
	}
}

// takeFree pops a recycled trace (or allocates one).
func (r *Recorder) takeFree() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		t := r.free[n-1]
		r.free = r.free[:n-1]
		return t
	}
	return &Trace{}
}

// commit finalises cur into the ring (evicting the oldest into the
// freelist), offers it to the exemplar sampler, and handles a pending
// dump request.
func (r *Recorder) commit(outcome string) {
	t := r.cur
	r.cur = nil
	t.Outcome = outcome
	r.t.ex.offer(t)

	r.mu.Lock()
	if r.n == len(r.ring) {
		old := r.ring[r.head]
		r.ring[r.head] = t
		r.head = (r.head + 1) % len(r.ring)
		old.reset()
		r.free = append(r.free, old)
	} else {
		r.ring[(r.head+r.n)%len(r.ring)] = t
		r.n++
	}
	r.mu.Unlock()

	if reason := r.dump; reason != "" {
		r.dump = ""
		r.t.dumpFlight(reason, r.worker, t.Domain)
	}
}

// recent clones the committed ring, newest first.
func (r *Recorder) recent() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.n)
	for i := r.n - 1; i >= 0; i-- {
		out = append(out, r.ring[(r.head+i)%len(r.ring)].clone())
	}
	return out
}

// sortTracesNewestFirst orders traces for the recent view: end time
// descending (virtual end times are comparable across workers of one
// run), with deterministic (worker, seq) tie-breaks — the fast engine
// produces many identical timestamps.
func sortTracesNewestFirst(ts []*Trace) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if !a.End.Equal(b.End) {
			return a.End.After(b.End)
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Seq > b.Seq
	})
}
