package trace

import (
	"sort"
	"sync"
)

// exemplarSet is the campaign-wide trace sampler: it retains the K slowest
// traces overall (a min-heap on duration) and the K most recent failed
// traces per outcome class, so an operator can always answer "what did the
// slowest scans do?" and "show me a dns-timeout" without keeping millions
// of traces. Offers clone the trace only on acceptance; the common case
// (fast, successful scan) is a bounded comparison under a mutex.
type exemplarSet struct {
	k int

	mu      sync.Mutex
	slowest []*Trace            // min-heap by Duration, size <= k
	failed  map[string][]*Trace // outcome class → ring of <= k clones
}

func newExemplarSet(k int) *exemplarSet {
	return &exemplarSet{k: k, failed: map[string][]*Trace{}}
}

// offer considers one committed trace for retention. The trace is still
// owned by the caller's ring: accepted traces are cloned.
func (e *exemplarSet) offer(t *Trace) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if t.Outcome != "" && t.Outcome != "ok" {
		ring := e.failed[t.Outcome]
		if len(ring) == e.k {
			// Most recent K win: drop the oldest clone.
			copy(ring, ring[1:])
			ring[len(ring)-1] = t.clone()
		} else {
			ring = append(ring, t.clone())
		}
		e.failed[t.Outcome] = ring
	}

	d := t.Duration()
	if len(e.slowest) < e.k {
		e.heapPush(t.clone())
		return
	}
	if len(e.slowest) > 0 && d > e.slowest[0].Duration() {
		e.slowest[0] = t.clone()
		e.siftDown(0)
	}
}

// ExemplarSnapshot is a point-in-time copy of the sampler's state, as
// served by the /debug/traces endpoint.
type ExemplarSnapshot struct {
	// Slowest holds the K slowest traces, slowest first.
	Slowest []*Trace `json:"slowest,omitempty"`
	// Failed maps outcome class to its most recent failed traces, oldest
	// first.
	Failed map[string][]*Trace `json:"failed,omitempty"`
}

// snapshot clones the current exemplars (caller-owned).
func (e *exemplarSet) snapshot() ExemplarSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := ExemplarSnapshot{Failed: map[string][]*Trace{}}
	for _, t := range e.slowest {
		s.Slowest = append(s.Slowest, t.clone())
	}
	sort.Slice(s.Slowest, func(i, j int) bool {
		if s.Slowest[i].Duration() != s.Slowest[j].Duration() {
			return s.Slowest[i].Duration() > s.Slowest[j].Duration()
		}
		return s.Slowest[i].Domain < s.Slowest[j].Domain
	})
	for class, ring := range e.failed {
		cs := make([]*Trace, 0, len(ring))
		for _, t := range ring {
			cs = append(cs, t.clone())
		}
		s.Failed[class] = cs
	}
	return s
}

// heapPush inserts into the duration min-heap.
func (e *exemplarSet) heapPush(t *Trace) {
	e.slowest = append(e.slowest, t)
	i := len(e.slowest) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.slowest[parent].Duration() <= e.slowest[i].Duration() {
			break
		}
		e.slowest[parent], e.slowest[i] = e.slowest[i], e.slowest[parent]
		i = parent
	}
}

// siftDown restores the min-heap property from index i.
func (e *exemplarSet) siftDown(i int) {
	n := len(e.slowest)
	for {
		small := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n && e.slowest[c].Duration() < e.slowest[small].Duration() {
				small = c
			}
		}
		if small == i {
			return
		}
		e.slowest[i], e.slowest[small] = e.slowest[small], e.slowest[i]
		i = small
	}
}
