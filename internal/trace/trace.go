// Package trace is the scanner's per-domain structured tracing layer: a
// zero-dependency, allocation-conscious record of *why* one domain was
// classified the way it was. Every scanned domain produces a bounded Trace
// of stage spans (dns → connect → handshake → h3 → observe → classify)
// with attributes like retry count, breaker state, hostile profile and
// spin edge count, timestamped on the engine's clock — virtual time for
// the emulated engine, so traces are deterministic for a fixed seed.
//
// Traces feed two consumers:
//
//   - A fixed-size per-worker ring buffer (the flight recorder): panics,
//     watchdog stalls and resource-budget kills dump the last N traces of
//     every worker to disk for postmortem instead of vanishing into a
//     one-line error string. See flight.go.
//   - An exemplar sampler that keeps the K slowest traces and the K most
//     recent failed traces per error class, so the interesting minority of
//     a multi-million-domain campaign stays inspectable. See exemplar.go.
//
// The whole layer is provably off the hot path: a nil *Tracer hands out
// nil *Recorders whose every method is an inlineable nil-check no-op (the
// AllocsPerRun gate in alloc_test.go pins zero allocations), and an
// enabled recorder recycles Trace objects through the ring's freelist so
// steady-state tracing allocates only for retained exemplars.
package trace

import (
	"fmt"
	"time"
)

// Attr is one key/value annotation on a trace or span. Exactly one of Str
// and Int is meaningful: string attrs leave Int at zero, integer attrs
// leave Str empty.
type Attr struct {
	Key string `json:"k"`
	Str string `json:"v,omitempty"`
	Int int64  `json:"n,omitempty"`
}

// Value renders the attr's value for the text view.
func (a Attr) Value() string {
	if a.Str != "" {
		return a.Str
	}
	return fmt.Sprintf("%d", a.Int)
}

// Span is one stage of a domain scan. Start and End are on the engine's
// clock (virtual time under emulation); a zero-duration span marks an
// instantaneous stage (classification, synthesis).
type Span struct {
	Stage string    `json:"stage"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Trace is the full record of one domain scan.
type Trace struct {
	Domain string    `json:"domain"`
	Worker int       `json:"worker"`
	Seq    uint64    `json:"seq"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// Outcome is "ok" for clean scans, otherwise the failure class
	// (resilience.Classify label, or "panic"/"stall" for aborted scans).
	Outcome string `json:"outcome"`
	// Err is the first error string the scan produced, verbatim.
	Err   string `json:"err,omitempty"`
	Spans []Span `json:"spans,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Duration is the trace's span on the engine clock.
func (t *Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// reset truncates the trace for reuse, keeping span/attr capacity.
func (t *Trace) reset() {
	for i := range t.Spans {
		t.Spans[i].Attrs = t.Spans[i].Attrs[:0]
	}
	t.Spans = t.Spans[:0]
	t.Attrs = t.Attrs[:0]
	t.Domain, t.Outcome, t.Err = "", "", ""
	t.Start, t.End = time.Time{}, time.Time{}
}

// clone deep-copies the trace (for exemplar retention: ring traces are
// recycled, exemplars must own their memory).
func (t *Trace) clone() *Trace {
	c := *t
	c.Spans = make([]Span, len(t.Spans))
	for i := range t.Spans {
		c.Spans[i] = t.Spans[i]
		if n := len(t.Spans[i].Attrs); n > 0 {
			c.Spans[i].Attrs = append(make([]Attr, 0, n), t.Spans[i].Attrs...)
		} else {
			c.Spans[i].Attrs = nil
		}
	}
	if n := len(t.Attrs); n > 0 {
		c.Attrs = append(make([]Attr, 0, n), t.Attrs...)
	} else {
		c.Attrs = nil
	}
	return &c
}

// Config parameterises a Tracer. The zero value is usable: defaults are
// filled in by New.
type Config struct {
	// RingSize is the per-worker flight-recorder depth (last N traces);
	// zero means 64.
	RingSize int
	// Exemplars bounds the sampler: the K slowest traces overall plus the
	// K most recent failed traces per error class; zero means 8.
	Exemplars int
	// Dir, when non-empty, is where flight-recorder dumps are written
	// (flight-NNN-<reason>.json). Empty disables dumps.
	Dir string
	// MaxDumps caps the number of dump files one campaign may write, so a
	// pathological run cannot fill the disk; zero means 16.
	MaxDumps int
	// Logf, when non-nil, receives one structured warning line per flight
	// dump (reason, worker, domain, path).
	Logf func(format string, args ...any)
}

func (c Config) ringSize() int {
	if c.RingSize <= 0 {
		return 64
	}
	return c.RingSize
}

func (c Config) exemplars() int {
	if c.Exemplars <= 0 {
		return 8
	}
	return c.Exemplars
}

func (c Config) maxDumps() int64 {
	if c.MaxDumps <= 0 {
		return 16
	}
	return int64(c.MaxDumps)
}
