package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FlightDump is the on-disk postmortem document: the triggering event plus
// the last N traces of every worker's flight ring at the moment of the
// dump. It is written on panics, watchdog stalls and resource-budget
// kills, so the failing domain's full stage trace survives instead of
// collapsing into a one-line error string.
type FlightDump struct {
	// Reason is the trigger class: "panic", "stall" or "budget".
	Reason string `json:"reason"`
	// Worker is the shard whose scan triggered the dump.
	Worker int `json:"worker"`
	// Domain is the scan that triggered the dump.
	Domain string `json:"domain"`
	// Traces are the flight rings of every worker, newest first.
	Traces []*Trace `json:"traces"`
	// Exemplars is the sampler state at dump time.
	Exemplars ExemplarSnapshot `json:"exemplars"`
}

// dumpFlight writes a FlightDump file and logs its path. Dump failures
// are reported through Logf but never propagate: the flight recorder is
// diagnostics, not control flow.
func (t *Tracer) dumpFlight(reason string, worker int, domain string) {
	if t == nil || t.cfg.Dir == "" {
		return
	}
	if t.dumps.Add(1) > t.cfg.maxDumps() {
		return
	}
	seq := t.dumpSeq.Add(1)
	path := filepath.Join(t.cfg.Dir, fmt.Sprintf("flight-%03d-%s.json", seq, reason))
	if err := t.writeDump(path, reason, worker, domain); err != nil {
		t.logf("trace: flight dump failed: reason=%s worker=%d domain=%s err=%v", reason, worker, domain, err)
		return
	}
	t.logf("trace: flight-recorder dump: reason=%s worker=%d domain=%s path=%s", reason, worker, domain, path)
}

// LastDumpCount reports how many dumps have been triggered (including any
// suppressed past MaxDumps). Nil-safe; used by tests and the text view.
func (t *Tracer) LastDumpCount() int64 {
	if t == nil {
		return 0
	}
	return t.dumps.Load()
}

func (t *Tracer) writeDump(path, reason string, worker int, domain string) error {
	if err := os.MkdirAll(t.cfg.Dir, 0o755); err != nil {
		return err
	}
	d := FlightDump{
		Reason:    reason,
		Worker:    worker,
		Domain:    domain,
		Traces:    t.Recent(0),
		Exemplars: t.Exemplars(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (t *Tracer) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// ReadFlightDump parses a dump file (test and tooling helper).
func ReadFlightDump(path string) (*FlightDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
