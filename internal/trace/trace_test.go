package trace

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)

// record writes one complete trace through the public recorder API.
func record(r *Recorder, domain string, dur time.Duration, outcome, errStr string) {
	r.Begin(domain, t0)
	r.StageStart("dns", t0)
	r.StageEnd(t0.Add(dur / 4))
	r.StageStart("connect", t0.Add(dur/4))
	r.SpanAttrInt("hop", 0)
	r.StageEnd(t0.Add(dur))
	r.AttrInt("retries", 1)
	r.Error(errStr)
	r.End(t0.Add(dur), outcome)
}

func TestRecorderBuildsTraces(t *testing.T) {
	tr := New(Config{RingSize: 4})
	r := tr.Recorder(0)
	record(r, "a.example", 10*time.Millisecond, "ok", "")
	record(r, "b.example", 20*time.Millisecond, "dns-timeout", "dns: timeout")

	recent := tr.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("recent = %d traces, want 2", len(recent))
	}
	// Newest first: b.example ended later.
	b := recent[0]
	if b.Domain != "b.example" || b.Outcome != "dns-timeout" || b.Err != "dns: timeout" {
		t.Fatalf("unexpected trace: %+v", b)
	}
	if len(b.Spans) != 2 || b.Spans[0].Stage != "dns" || b.Spans[1].Stage != "connect" {
		t.Fatalf("spans = %+v", b.Spans)
	}
	if got := b.Spans[1].Attrs[0]; got.Key != "hop" || got.Int != 0 {
		t.Fatalf("span attr = %+v", got)
	}
	if b.Duration() != 20*time.Millisecond {
		t.Fatalf("duration = %v", b.Duration())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Config{RingSize: 3})
	r := tr.Recorder(0)
	for i, d := range []string{"a", "b", "c", "d", "e"} {
		record(r, d, time.Duration(i+1)*time.Millisecond, "ok", "")
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(recent))
	}
	got := []string{recent[0].Domain, recent[1].Domain, recent[2].Domain}
	want := []string{"e", "d", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recent = %v, want %v", got, want)
		}
	}
}

func TestPendingAttrsDrainIntoNextTrace(t *testing.T) {
	tr := New(Config{})
	r := tr.Recorder(2)
	r.Pending("breaker", "open")
	record(r, "x.example", time.Millisecond, "breaker-open", "breaker: open")
	got := tr.Recent(1)[0]
	if len(got.Attrs) == 0 || got.Attrs[0].Key != "breaker" || got.Attrs[0].Str != "open" {
		t.Fatalf("attrs = %+v", got.Attrs)
	}
	// Pending attrs must not leak into the trace after next.
	record(r, "y.example", time.Millisecond, "ok", "")
	for _, a := range tr.Recent(1)[0].Attrs {
		if a.Key == "breaker" {
			t.Fatalf("pending attr leaked: %+v", a)
		}
	}
}

func TestExemplarsKeepSlowestAndFailedPerClass(t *testing.T) {
	tr := New(Config{Exemplars: 2})
	r := tr.Recorder(0)
	for i := 1; i <= 6; i++ {
		record(r, "s"+string(rune('0'+i)), time.Duration(i)*time.Millisecond, "ok", "")
	}
	for i := 1; i <= 4; i++ {
		record(r, "f"+string(rune('0'+i)), time.Millisecond, "dns-timeout", "dns: timeout")
	}
	record(r, "other", time.Millisecond, "reset", "conn reset")

	ex := tr.Exemplars()
	if len(ex.Slowest) != 2 {
		t.Fatalf("slowest = %d, want 2", len(ex.Slowest))
	}
	if ex.Slowest[0].Domain != "s6" || ex.Slowest[1].Domain != "s5" {
		t.Fatalf("slowest = %s, %s", ex.Slowest[0].Domain, ex.Slowest[1].Domain)
	}
	fails := ex.Failed["dns-timeout"]
	if len(fails) != 2 || fails[0].Domain != "f3" || fails[1].Domain != "f4" {
		t.Fatalf("dns-timeout exemplars = %+v", fails)
	}
	if len(ex.Failed["reset"]) != 1 {
		t.Fatalf("reset exemplars = %d, want 1", len(ex.Failed["reset"]))
	}
}

func TestAbortCommitsPartialTraceAndDumps(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	tr := New(Config{Dir: dir, Logf: func(f string, a ...any) {
		logged = append(logged, f)
	}})
	r := tr.Recorder(1)
	record(r, "before.example", time.Millisecond, "ok", "")
	r.Begin("crash.example", t0)
	r.StageStart("connect", t0)
	r.Error("panic: injected")
	r.Abort("panic")

	files, err := filepath.Glob(filepath.Join(dir, "flight-*-panic.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("dump files = %v (err %v), want one", files, err)
	}
	d, err := ReadFlightDump(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "panic" || d.Domain != "crash.example" || d.Worker != 1 {
		t.Fatalf("dump header = %+v", d)
	}
	var found *Trace
	for _, tc := range d.Traces {
		if tc.Domain == "crash.example" {
			found = tc
		}
	}
	if found == nil {
		t.Fatal("dump does not contain the crashing domain's trace")
	}
	if found.Outcome != "panic" || len(found.Spans) == 0 || found.Spans[0].Stage != "connect" {
		t.Fatalf("crash trace = %+v", found)
	}
	if len(logged) == 0 {
		t.Fatal("no structured warning logged for the dump")
	}
}

func TestMarkDumpTriggersAfterCommit(t *testing.T) {
	dir := t.TempDir()
	tr := New(Config{Dir: dir})
	r := tr.Recorder(0)
	r.Begin("budget.example", t0)
	r.MarkDump("budget")
	r.End(t0.Add(time.Millisecond), "hostile")
	files, _ := filepath.Glob(filepath.Join(dir, "flight-*-budget.json"))
	if len(files) != 1 {
		t.Fatalf("dump files = %v, want one budget dump", files)
	}
	d, err := ReadFlightDump(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// The dump must include the committed trace that triggered it.
	if len(d.Traces) != 1 || d.Traces[0].Domain != "budget.example" {
		t.Fatalf("dump traces = %+v", d.Traces)
	}
}

func TestMaxDumpsCapsFiles(t *testing.T) {
	dir := t.TempDir()
	tr := New(Config{Dir: dir, MaxDumps: 2})
	r := tr.Recorder(0)
	for i := 0; i < 5; i++ {
		r.Begin("d.example", t0)
		r.MarkDump("stall")
		r.End(t0, "stall")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 2 {
		t.Fatalf("dump files = %d, want 2 (capped)", len(files))
	}
	if tr.LastDumpCount() != 5 {
		t.Fatalf("dump count = %d, want 5", tr.LastDumpCount())
	}
}

func TestNilTracerAndRecorderAreNoOps(t *testing.T) {
	var tr *Tracer
	r := tr.Recorder(3)
	if r != nil {
		t.Fatal("nil tracer handed out a non-nil recorder")
	}
	// Every method must be callable on the nil recorder.
	r.Begin("x", t0)
	r.Pending("k", "v")
	r.Attr("k", "v")
	r.AttrInt("k", 1)
	r.StageStart("dns", t0)
	r.StageEnd(t0)
	r.SpanAttr("k", "v")
	r.SpanAttrInt("k", 1)
	r.Error("boom")
	r.MarkDump("stall")
	r.End(t0, "ok")
	r.Abort("panic")
	if r.Active() {
		t.Fatal("nil recorder reports active")
	}
	if got := tr.Recent(10); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	if got := tr.Exemplars(); got.Slowest != nil {
		t.Fatalf("nil tracer Exemplars = %+v", got)
	}
	tr.dumpFlight("stall", 0, "x")
}

func TestHandlerJSONAndText(t *testing.T) {
	tr := New(Config{})
	r := tr.Recorder(0)
	record(r, "ok.example", 5*time.Millisecond, "ok", "")
	record(r, "bad.example", 7*time.Millisecond, "reset", "connection reset")

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Recent []*Trace            `json:"recent"`
		Ex     map[string]any      `json:"exemplars"`
		Failed map[string][]*Trace `json:"-"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(doc.Recent) != 2 {
		t.Fatalf("recent = %d", len(doc.Recent))
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=text&n=1", nil))
	body := rec.Body.String()
	for _, want := range []string{"recent traces (1)", "bad.example", "outcome=reset", "connection reset", "failed exemplars: reset"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text view missing %q in:\n%s", want, body)
		}
	}
}

func TestHandlerNilTracerServesEmptyDoc(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"recent": []`) {
		t.Fatalf("nil tracer body: %s", rec.Body.String())
	}
}

// TestConcurrentRingWritesAndReads is the race-detector gate for the
// flight ring: workers commit traces while the dashboard reads recent
// traces and exemplars.
func TestConcurrentRingWritesAndReads(t *testing.T) {
	tr := New(Config{RingSize: 8})
	const workers = 4
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := tr.Recorder(w)
			for i := 0; i < 500; i++ {
				outcome, errStr := "ok", ""
				if i%7 == 0 {
					outcome, errStr = "timeout", "timeout: no response"
				}
				record(r, "d.example", time.Duration(i)*time.Microsecond, outcome, errStr)
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		h := Handler(tr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Recent(16)
			tr.Exemplars()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=4", nil))
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := len(tr.Recent(0)); got != 8*workers {
		t.Fatalf("retained %d traces, want %d", got, 8*workers)
	}
}

func TestDumpFailureIsNonFatal(t *testing.T) {
	// Point the dump dir at a path that cannot be a directory.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged int
	tr := New(Config{Dir: filepath.Join(file, "sub"), Logf: func(string, ...any) { logged++ }})
	r := tr.Recorder(0)
	r.Begin("x.example", t0)
	r.Abort("panic")
	if logged == 0 {
		t.Fatal("dump failure not logged")
	}
}
