package trace

import (
	"testing"
	"time"
)

// TestDisabledTracingZeroAlloc is the acceptance gate for "provably off
// the hot path": the full per-domain recorder call sequence, exactly as
// the scanner issues it, must allocate nothing when tracing is disabled
// (nil tracer → nil recorder). scripts/check.sh runs this test by name.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	var tr *Tracer
	r := tr.Recorder(0)
	at := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Pending("breaker", "open")
		r.Begin("example.com", at)
		r.StageStart("dns", at)
		r.StageEnd(at)
		r.StageStart("connect", at)
		r.SpanAttrInt("hop", 0)
		r.SpanAttr("ip", "192.0.2.1")
		r.StageEnd(at)
		r.StageStart("observe", at)
		r.SpanAttrInt("edges", 12)
		r.StageEnd(at)
		r.AttrInt("retries", 0)
		r.Error("")
		r.End(at, "ok")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f allocs per scan, want 0", allocs)
	}
}

// TestEnabledTracingSteadyStateAllocs pins the enabled path's amortised
// cost: once the ring is warm and no exemplar accepts the trace, a full
// successful-scan trace must reuse recycled Trace objects (zero
// steady-state allocations).
func TestEnabledTracingSteadyStateAllocs(t *testing.T) {
	tr := New(Config{RingSize: 4, Exemplars: 2})
	r := tr.Recorder(0)
	at := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	run := func(d time.Duration) {
		r.Begin("example.com", at)
		r.StageStart("dns", at)
		r.StageEnd(at)
		r.StageStart("connect", at)
		r.SpanAttrInt("hop", 0)
		r.StageEnd(at.Add(d))
		r.AttrInt("retries", 0)
		r.End(at.Add(d), "ok")
	}
	// Warm up: fill the ring and saturate the slowest-exemplar heap with
	// longer traces so steady-state offers are rejected by comparison.
	for i := 0; i < 16; i++ {
		run(time.Second)
	}
	allocs := testing.AllocsPerRun(1000, func() { run(time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("enabled tracing steady state allocates %.1f allocs per scan, want 0", allocs)
	}
}
