package core

import (
	"sort"
	"time"
)

// SpinRTTs computes RTT samples from a single-direction series of spin-bit
// observations exactly the way the paper does (§3.3): every change of the
// spin value between consecutive packets is a spin edge, and the time
// between two consecutive edges is one RTT sample.
//
// With sortByPN false the series is processed in received order, which is
// what an on-path observer sees (paper terminology "R"). With sortByPN true
// the series is first stably sorted by packet number, undoing network
// reordering ("S"). The input slice is never modified.
func SpinRTTs(obs []Observation, sortByPN bool) []time.Duration {
	if len(obs) < 2 {
		return nil
	}
	series := obs
	if sortByPN {
		series = make([]Observation, len(obs))
		copy(series, obs)
		sort.SliceStable(series, func(i, j int) bool { return series[i].PN < series[j].PN })
	}
	var rtts []time.Duration
	last := series[0].Spin
	var lastEdge time.Time
	haveEdge := false
	for _, o := range series[1:] {
		if o.Spin == last {
			continue
		}
		last = o.Spin
		if haveEdge {
			rtts = append(rtts, o.T.Sub(lastEdge))
		}
		lastEdge = o.T
		haveEdge = true
	}
	return rtts
}

// HasFlips reports whether the series contains both spin values, i.e. the
// connection is a candidate spin-bit user in the paper's classification.
func HasFlips(obs []Observation) bool {
	if len(obs) == 0 {
		return false
	}
	first := obs[0].Spin
	for _, o := range obs[1:] {
		if o.Spin != first {
			return true
		}
	}
	return false
}

// SeriesKind classifies a spin-bit series the way Table 3 of the paper does.
type SeriesKind int

const (
	// KindAllZero: every observed packet carried spin value 0.
	KindAllZero SeriesKind = iota
	// KindAllOne: every observed packet carried spin value 1.
	KindAllOne
	// KindFlipping: both values were observed; the connection either spins
	// or greases. The grease filter (analysis package) separates the two.
	KindFlipping
	// KindEmpty: no short-header packets observed.
	KindEmpty
)

// String returns the Table 3 column name of the kind.
func (k SeriesKind) String() string {
	switch k {
	case KindAllZero:
		return "All Zero"
	case KindAllOne:
		return "All One"
	case KindFlipping:
		return "Spin"
	case KindEmpty:
		return "Empty"
	default:
		return "Unknown"
	}
}

// ClassifySeries assigns the Table 3 category of a spin observation series.
func ClassifySeries(obs []Observation) SeriesKind {
	if len(obs) == 0 {
		return KindEmpty
	}
	if HasFlips(obs) {
		return KindFlipping
	}
	if obs[0].Spin {
		return KindAllOne
	}
	return KindAllZero
}

// Direction identifies the two halves of a bidirectional flow as seen by an
// on-path observer.
type Direction int

const (
	// ClientToServer packets travel from the connection initiator.
	ClientToServer Direction = iota
	// ServerToClient packets travel toward the initiator.
	ServerToClient
)

// RTTSample is one spin-bit RTT measurement produced by the Observer.
type RTTSample struct {
	// T is the time the measurement completed (second edge).
	T time.Time
	// RTT is the measured duration.
	RTT time.Duration
	// Dir is the direction whose edges produced the sample.
	Dir Direction
	// Filtered marks samples rejected by the configured heuristics; they
	// are reported for diagnostics but must not feed estimates.
	Filtered bool
}

// ObserverConfig tunes the passive Observer.
type ObserverConfig struct {
	// UsePacketNumberGuard accepts an edge only when the packet carrying it
	// has the largest packet number seen in its direction, suppressing
	// reordering-induced ultra-short spin cycles (RFC 9312 §4.2 and
	// Fig. 1b of the paper). Requires observation of packet numbers, which
	// a real observer of encrypted QUIC does not have; the paper's
	// client-side vantage point does.
	UsePacketNumberGuard bool
	// Filter optionally rejects implausible samples (see Heuristic types).
	// Rejected samples are emitted with Filtered = true.
	Filter SampleFilter
	// UseVEC consumes the Valid Edge Counter carried in the reserved bits:
	// only edges with VEC == 3 are treated as valid measurement edges.
	UseVEC bool
}

// EdgeState is the packed per-direction spin-edge state machine behind the
// Observer, exported so that fixed-memory observers (internal/flowtable) can
// embed the exact same semantics in a table slot. It is 24 bytes, holds no
// pointers, and the zero value is ready to use.
//
// Time is carried as UnixNano int64 rather than time.Time so the struct
// stays flat; in the repo's virtual-time harness the nanosecond difference
// is identical to time.Time.Sub.
type EdgeState struct {
	largestPN uint64
	lastEdge  int64 // UnixNano of the last valid edge
	edges     uint32
	flags     uint8
}

const (
	esHaveValue uint8 = 1 << iota
	esValue
	esHavePN
	esHaveEdge
)

// Step processes one short-header packet: spin value, VEC bits, packet
// number and arrival time tNanos (UnixNano). guardPN and useVEC correspond
// to ObserverConfig.UsePacketNumberGuard and UseVEC. It returns the
// completed RTT in nanoseconds when this packet closes a sample.
//
// The branch order replicates Observer.Observe exactly: PN guard, first
// value capture, value-change detection, VEC validity, edge pairing.
func (d *EdgeState) Step(guardPN, useVEC bool, tNanos int64, pn uint64, spin bool, vec uint8) (int64, bool) {
	if guardPN {
		if d.flags&esHavePN != 0 && pn <= d.largestPN {
			return 0, false
		}
		d.flags |= esHavePN
		d.largestPN = pn
	}
	if d.flags&esHaveValue == 0 {
		d.flags |= esHaveValue
		if spin {
			d.flags |= esValue
		}
		return 0, false
	}
	if spin == (d.flags&esValue != 0) {
		return 0, false
	}
	d.flags ^= esValue
	d.edges++
	if useVEC && vec != VECFullyValid {
		// Invalid edge: it must not produce a sample, and it also must not
		// serve as the start of the next one.
		d.flags &^= esHaveEdge
		return 0, false
	}
	if d.flags&esHaveEdge == 0 {
		d.flags |= esHaveEdge
		d.lastEdge = tNanos
		return 0, false
	}
	rtt := tNanos - d.lastEdge
	d.lastEdge = tNanos
	return rtt, true
}

// Edges returns the number of accepted spin transitions seen so far (value
// changes that survived the packet-number guard, valid or not under VEC).
func (d *EdgeState) Edges() uint32 { return d.edges }

// Observer is a passive on-path spin-bit observer. Feed it every
// short-header packet of one flow via Observe and collect RTT samples.
//
// Edges are detected per direction; the time between two consecutive edges
// in the same direction is a full RTT (an observer positioned anywhere on
// the path sees one edge per direction per round trip).
type Observer struct {
	cfg     ObserverConfig
	dirs    [2]EdgeState
	samples []RTTSample
}

// NewObserver returns an Observer with the given configuration.
func NewObserver(cfg ObserverConfig) *Observer {
	return &Observer{cfg: cfg}
}

// Observe processes one short-header packet travelling in dir. It returns
// the RTT sample completed by this packet, if any.
func (o *Observer) Observe(dir Direction, obs Observation) (RTTSample, bool) {
	rtt, ok := o.dirs[dir].Step(o.cfg.UsePacketNumberGuard, o.cfg.UseVEC, obs.T.UnixNano(), obs.PN, obs.Spin, obs.VEC)
	if !ok {
		return RTTSample{}, false
	}
	s := RTTSample{T: obs.T, RTT: time.Duration(rtt), Dir: dir}
	if o.cfg.Filter != nil && !o.cfg.Filter.Accept(s.RTT) {
		s.Filtered = true
	}
	o.samples = append(o.samples, s)
	return s, true
}

// Edges returns the number of accepted spin transitions observed in dir.
func (o *Observer) Edges(dir Direction) uint32 { return o.dirs[dir].Edges() }

// Samples returns every sample produced so far, including filtered ones.
// The slice aliases internal state and must not be modified.
func (o *Observer) Samples() []RTTSample { return o.samples }

// ValidSamples returns the samples that passed the configured filter.
func (o *Observer) ValidSamples() []RTTSample {
	out := make([]RTTSample, 0, len(o.samples))
	for _, s := range o.samples {
		if !s.Filtered {
			out = append(out, s)
		}
	}
	return out
}

// MeanRTT returns the mean of the valid samples in dir, or 0 if none.
func (o *Observer) MeanRTT(dir Direction) time.Duration {
	var sum time.Duration
	n := 0
	for _, s := range o.samples {
		if s.Dir == dir && !s.Filtered {
			sum += s.RTT
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}
