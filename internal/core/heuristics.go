package core

import (
	"sort"
	"time"
)

// SampleFilter judges whether a spin-bit RTT sample is plausible. RFC 9312
// §4.2 recommends such heuristics because reordering around spin edges can
// produce ultra-short spin cycles (Fig. 1b of the paper).
type SampleFilter interface {
	// Accept reports whether the sample should feed RTT estimates. Filters
	// may keep state; Accept is called in sample arrival order.
	Accept(rtt time.Duration) bool
}

// StaticThreshold rejects samples below a fixed floor. A few hundred
// microseconds already removes the sub-millisecond artifacts reordering
// produces while never touching genuine WAN RTTs.
type StaticThreshold struct {
	// Min is the smallest acceptable sample.
	Min time.Duration
}

// Accept implements SampleFilter.
func (f StaticThreshold) Accept(rtt time.Duration) bool { return rtt >= f.Min }

// RelativeFilter rejects samples smaller than Fraction times the running
// median of previously accepted samples, after a warm-up of WarmUp accepted
// samples. This is the style of dynamic heuristic RFC 9312 sketches.
type RelativeFilter struct {
	// Fraction of the running median below which samples are rejected.
	// A typical value is 0.1.
	Fraction float64
	// WarmUp is the number of samples accepted unconditionally first.
	WarmUp int

	accepted []time.Duration
}

// Accept implements SampleFilter.
func (f *RelativeFilter) Accept(rtt time.Duration) bool {
	if len(f.accepted) < f.WarmUp {
		f.accepted = append(f.accepted, rtt)
		return true
	}
	if float64(rtt) < f.Fraction*float64(f.median()) {
		return false
	}
	f.accepted = append(f.accepted, rtt)
	return true
}

func (f *RelativeFilter) median() time.Duration {
	tmp := make([]time.Duration, len(f.accepted))
	copy(tmp, f.accepted)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[len(tmp)/2]
}

// FilterChain applies several filters in order; a sample must pass all.
type FilterChain []SampleFilter

// Accept implements SampleFilter.
func (c FilterChain) Accept(rtt time.Duration) bool {
	for _, f := range c {
		if !f.Accept(rtt) {
			return false
		}
	}
	return true
}

// Valid Edge Counter (VEC) of De Vaere et al., "Three Bits Suffice"
// (IMC 2018). The VEC is a two-bit counter accompanying the spin bit that
// marks how trustworthy an edge is; it never entered RFC 9000 but this
// library implements it as an extension carried in the two reserved bits of
// the short header (the paper's §2.1 mentions it as the dropped companion
// mechanism).
const (
	// VECInvalid marks a packet that carries no edge.
	VECInvalid uint8 = 0
	// VECEdgeUnverified marks an edge whose validity is unknown (set by a
	// sender starting a new wave).
	VECEdgeUnverified uint8 = 1
	// VECEdgeDelayed marks an edge that was reflected after being held for
	// the peer's processing, one step from fully valid.
	VECEdgeDelayed uint8 = 2
	// VECFullyValid marks an edge that completed a full validated cycle;
	// observers may use it unconditionally.
	VECFullyValid uint8 = 3
)

// VECState implements the endpoint side of the Valid Edge Counter. Each
// endpoint tracks the VEC of the latest incoming edge and stamps outgoing
// packets: packets that do not carry an edge send VECInvalid; an outgoing
// edge carries min(incomingVEC+1, 3), or VECEdgeUnverified when the wave is
// (re)started locally.
type VECState struct {
	incomingVEC uint8
	lastSpin    bool
	haveIn      bool
	lastSent    bool
	haveOut     bool
}

// OnReceive records an incoming packet's spin and VEC values. Call only for
// packets that advance the largest packet number (same rule as the spin
// state machine).
func (v *VECState) OnReceive(spin bool, vec uint8) {
	if v.haveIn && spin != v.lastSpin {
		// Incoming edge: remember its counter.
		v.incomingVEC = vec
	} else if !v.haveIn {
		v.incomingVEC = vec
	}
	v.haveIn = true
	v.lastSpin = spin
}

// Next returns the VEC value for an outgoing packet with spin value spin.
func (v *VECState) Next(spin bool) uint8 {
	defer func() { v.lastSent = spin; v.haveOut = true }()
	if v.haveOut && spin == v.lastSent {
		return VECInvalid // not an edge
	}
	if !v.haveIn {
		// Locally started wave: unverified edge.
		return VECEdgeUnverified
	}
	next := v.incomingVEC + 1
	if next > VECFullyValid {
		next = VECFullyValid
	}
	if next < VECEdgeUnverified {
		next = VECEdgeUnverified
	}
	return next
}
