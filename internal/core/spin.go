// Package core implements the subject of the paper: the QUIC latency spin
// bit (RFC 9000 §17.4).
//
// It contains the endpoint-side state machines (the client spins the bit,
// the server reflects it), the configurable spin policies observed in the
// wild (spinning, fixed zero/one, per-packet and per-connection greasing,
// and the RFC-mandated 1-in-N disabling), the passive on-path observer that
// turns spin edges into RTT samples, the RFC 9312 measurement heuristics,
// and the Valid Edge Counter (VEC) extension of De Vaere et al.
package core

import "time"

// Observation is one received short-header packet as seen by an observer or
// logged in a qlog trace: arrival time, packet number, spin-bit value, and
// (for the three-bit extension) the VEC value carried in the reserved bits.
type Observation struct {
	// T is the observation (receive) timestamp.
	T time.Time
	// PN is the QUIC packet number.
	PN uint64
	// Spin is the value of the latency spin bit.
	Spin bool
	// VEC is the Valid Edge Counter (0–3); 0 when the extension is unused.
	VEC uint8
}

// EndpointState is the per-connection spin-bit state machine of one QUIC
// endpoint per RFC 9000 §17.4: each endpoint remembers the spin value of the
// packet with the largest packet number received from its peer; the server
// sends that value back, while the client sends its inverse. The client
// starts the wave at 0.
type EndpointState struct {
	isClient    bool
	value       bool
	largestPN   uint64
	hasReceived bool
}

// NewEndpointState returns the spin state machine for one side of a
// connection. The initial outgoing value is 0 for both roles.
func NewEndpointState(isClient bool) *EndpointState {
	return &EndpointState{isClient: isClient}
}

// OnReceive updates the state machine with an incoming short-header packet.
// Only the packet with the largest packet number seen so far changes the
// state; late (reordered) packets are ignored, as the RFC requires.
func (s *EndpointState) OnReceive(pn uint64, spin bool) {
	if s.hasReceived && pn <= s.largestPN {
		return
	}
	s.hasReceived = true
	s.largestPN = pn
	if s.isClient {
		s.value = !spin
	} else {
		s.value = spin
	}
}

// Value returns the spin value to place on outgoing short-header packets.
func (s *EndpointState) Value() bool { return s.value }

// LargestReceived returns the largest packet number that has updated the
// state, and whether any packet has been received.
func (s *EndpointState) LargestReceived() (uint64, bool) {
	return s.largestPN, s.hasReceived
}
