package core

import (
	"testing"
	"time"
)

func TestStaticThreshold(t *testing.T) {
	f := StaticThreshold{Min: 5 * time.Millisecond}
	if f.Accept(4 * time.Millisecond) {
		t.Error("accepted below floor")
	}
	if !f.Accept(5 * time.Millisecond) {
		t.Error("rejected at floor")
	}
	if !f.Accept(time.Second) {
		t.Error("rejected large sample")
	}
}

func TestRelativeFilter(t *testing.T) {
	f := &RelativeFilter{Fraction: 0.1, WarmUp: 3}
	// Warm-up accepts everything.
	for _, d := range []time.Duration{100, 110, 90} {
		if !f.Accept(d * time.Millisecond) {
			t.Fatalf("warm-up rejected %v", d)
		}
	}
	// Median ≈ 100ms → 5ms is below 10% and must be rejected.
	if f.Accept(5 * time.Millisecond) {
		t.Error("accepted 5ms against ~100ms median")
	}
	if !f.Accept(50 * time.Millisecond) {
		t.Error("rejected plausible 50ms")
	}
	// Rejected samples must not drag the median down.
	for i := 0; i < 10; i++ {
		f.Accept(time.Millisecond)
	}
	if f.Accept(2 * time.Millisecond) {
		t.Error("median corrupted by rejected samples")
	}
}

func TestFilterChain(t *testing.T) {
	c := FilterChain{
		StaticThreshold{Min: time.Millisecond},
		&RelativeFilter{Fraction: 0.1, WarmUp: 1},
	}
	if !c.Accept(100 * time.Millisecond) {
		t.Error("chain rejected first sample")
	}
	if c.Accept(500 * time.Microsecond) {
		t.Error("chain accepted sub-floor sample")
	}
	if c.Accept(2 * time.Millisecond) {
		t.Error("chain accepted sample below relative threshold")
	}
}

func TestVECStateStartsUnverified(t *testing.T) {
	v := &VECState{}
	// First outgoing packet starts the wave: an unverified edge.
	if got := v.Next(false); got != VECEdgeUnverified {
		t.Errorf("first packet VEC = %d, want %d", got, VECEdgeUnverified)
	}
	// Repeating the same spin value is not an edge.
	if got := v.Next(false); got != VECInvalid {
		t.Errorf("non-edge VEC = %d, want %d", got, VECInvalid)
	}
}

func TestVECCounterIncrementsAcrossReflections(t *testing.T) {
	client := &VECState{}
	server := &VECState{}
	cs := NewEndpointState(true)
	ss := NewEndpointState(false)

	// Client starts the wave.
	spin := cs.Value()
	vec := client.Next(spin) // unverified (1)
	if vec != VECEdgeUnverified {
		t.Fatalf("client VEC = %d", vec)
	}
	// Server receives, reflects: its outgoing edge must carry 2.
	ss.OnReceive(0, spin)
	server.OnReceive(spin, vec)
	sSpin := ss.Value()
	sVec := server.Next(sSpin)
	if sVec != VECEdgeDelayed {
		t.Fatalf("server VEC = %d, want %d", sVec, VECEdgeDelayed)
	}
	// Client inverts: the next client edge carries 3 (fully valid).
	cs.OnReceive(0, sSpin)
	client.OnReceive(sSpin, sVec)
	cSpin := cs.Value()
	cVec := client.Next(cSpin)
	if cVec != VECFullyValid {
		t.Fatalf("second client edge VEC = %d, want %d", cVec, VECFullyValid)
	}
	// And it saturates at 3 from then on.
	ss.OnReceive(1, cSpin)
	server.OnReceive(cSpin, cVec)
	if got := server.Next(ss.Value()); got != VECFullyValid {
		t.Fatalf("saturated VEC = %d, want 3", got)
	}
}

func TestObserverUseVEC(t *testing.T) {
	o := NewObserver(ObserverConfig{UseVEC: true})
	mk := func(ms int, pn uint64, spin bool, vec uint8) Observation {
		return Observation{T: t0.Add(time.Duration(ms) * time.Millisecond), PN: pn, Spin: spin, VEC: vec}
	}
	// First edge unverified (VEC 1): must not start a measurement.
	o.Observe(ClientToServer, mk(0, 1, false, VECInvalid))
	o.Observe(ClientToServer, mk(10, 2, true, VECEdgeUnverified))
	// Fully valid edge: starts a measurement.
	o.Observe(ClientToServer, mk(100, 3, false, VECFullyValid))
	// Next valid edge completes it.
	s, ok := o.Observe(ClientToServer, mk(200, 4, true, VECFullyValid))
	if !ok || s.RTT != 100*time.Millisecond {
		t.Fatalf("VEC observer sample = (%+v, %v)", s, ok)
	}
	if n := len(o.Samples()); n != 1 {
		t.Errorf("samples = %d, want 1", n)
	}
}
