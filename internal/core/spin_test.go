package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClientSpinsServerReflects(t *testing.T) {
	client := NewEndpointState(true)
	server := NewEndpointState(false)
	if client.Value() || server.Value() {
		t.Fatal("initial spin value must be 0")
	}
	// Client sends 0; server reflects 0.
	server.OnReceive(0, client.Value())
	if server.Value() != false {
		t.Fatal("server must reflect 0")
	}
	// Server's 0 arrives at client; client inverts to 1.
	client.OnReceive(0, server.Value())
	if client.Value() != true {
		t.Fatal("client must invert to 1")
	}
	// Next half-wave: server reflects 1, client inverts to 0.
	server.OnReceive(1, client.Value())
	if server.Value() != true {
		t.Fatal("server must reflect 1")
	}
	client.OnReceive(1, server.Value())
	if client.Value() != false {
		t.Fatal("client must invert back to 0")
	}
}

func TestReorderedPacketsIgnored(t *testing.T) {
	s := NewEndpointState(false)
	s.OnReceive(10, true)
	if s.Value() != true {
		t.Fatal("server did not reflect")
	}
	// An older packet with the opposite value must not regress the state.
	s.OnReceive(5, false)
	if s.Value() != true {
		t.Error("reordered packet changed spin state")
	}
	if pn, ok := s.LargestReceived(); !ok || pn != 10 {
		t.Errorf("LargestReceived = (%d, %v)", pn, ok)
	}
	// Equal packet number must be ignored too.
	s.OnReceive(10, false)
	if s.Value() != true {
		t.Error("duplicate packet changed spin state")
	}
}

// TestSquareWavePeriodEqualsRTT simulates the ping-pong of Fig. 1a: the
// client's outgoing spin value must form a square wave with period equal to
// the round-trip time.
func TestSquareWavePeriodEqualsRTT(t *testing.T) {
	const owd = 50 * time.Millisecond // one-way delay, RTT = 100ms
	client := NewEndpointState(true)
	server := NewEndpointState(false)
	now := time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)

	type edge struct {
		t time.Time
		v bool
	}
	var clientEdges []edge
	lastVal := client.Value()
	clientEdges = append(clientEdges, edge{now, lastVal})

	pn := uint64(0)
	for i := 0; i < 20; i++ {
		// Client sends its value; server receives after owd and reflects.
		v := client.Value()
		server.OnReceive(pn, v)
		pn++
		// Server response arrives back at client after another owd.
		now = now.Add(2 * owd)
		client.OnReceive(pn, server.Value())
		pn++
		if client.Value() != lastVal {
			lastVal = client.Value()
			clientEdges = append(clientEdges, edge{now, lastVal})
		}
	}
	if len(clientEdges) < 3 {
		t.Fatalf("expected spin edges, got %d", len(clientEdges))
	}
	for i := 1; i < len(clientEdges); i++ {
		period := clientEdges[i].t.Sub(clientEdges[i-1].t)
		if period != 2*owd {
			t.Errorf("edge %d: period %v, want %v", i, period, 2*owd)
		}
		if clientEdges[i].v == clientEdges[i-1].v {
			t.Errorf("edge %d does not alternate", i)
		}
	}
}

func TestControllerModes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	t.Run("zero", func(t *testing.T) {
		c := NewController(true, Policy{Mode: ModeZero}, rng)
		for i := 0; i < 50; i++ {
			if c.Next() {
				t.Fatal("ModeZero produced 1")
			}
		}
		if c.Spinning() {
			t.Error("ModeZero claims spinning")
		}
	})
	t.Run("one", func(t *testing.T) {
		c := NewController(true, Policy{Mode: ModeOne}, rng)
		for i := 0; i < 50; i++ {
			if !c.Next() {
				t.Fatal("ModeOne produced 0")
			}
		}
	})
	t.Run("grease-per-packet", func(t *testing.T) {
		c := NewController(true, Policy{Mode: ModeGreasePerPacket}, rng)
		seen := map[bool]int{}
		for i := 0; i < 200; i++ {
			seen[c.Next()]++
		}
		if seen[true] < 50 || seen[false] < 50 {
			t.Errorf("per-packet greasing not balanced: %v", seen)
		}
	})
	t.Run("grease-per-conn", func(t *testing.T) {
		vals := map[bool]int{}
		for i := 0; i < 100; i++ {
			c := NewController(true, Policy{Mode: ModeGreasePerConn}, rng)
			first := c.Next()
			for j := 0; j < 20; j++ {
				if c.Next() != first {
					t.Fatal("per-connection grease value changed mid-connection")
				}
			}
			vals[first]++
		}
		if vals[true] < 20 || vals[false] < 20 {
			t.Errorf("per-conn grease values not balanced across connections: %v", vals)
		}
	})
	t.Run("spin-follows-state", func(t *testing.T) {
		c := NewController(false, Policy{Mode: ModeSpin}, rng)
		if c.Next() {
			t.Fatal("server initial value must be 0")
		}
		c.OnReceive(1, true)
		if !c.Next() {
			t.Fatal("server must reflect incoming 1")
		}
		if !c.Spinning() {
			t.Error("ModeSpin not spinning")
		}
	})
}

func TestControllerDisableEveryN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const conns = 20000
	disabled := 0
	for i := 0; i < conns; i++ {
		c := NewController(true, Policy{Mode: ModeSpin, DisableEveryN: 16, DisabledMode: ModeZero}, rng)
		if c.DisabledByRule() {
			disabled++
			if c.Spinning() {
				t.Fatal("disabled connection claims spinning")
			}
			if c.EffectiveMode() != ModeZero {
				t.Fatalf("disabled mode = %v", c.EffectiveMode())
			}
		}
	}
	got := float64(disabled) / conns
	if got < 0.05 || got > 0.08 {
		t.Errorf("disable rate = %.4f, want ~1/16 = 0.0625", got)
	}
}

func TestControllerDisabledGreaseFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sawGrease := false
	for i := 0; i < 500 && !sawGrease; i++ {
		c := NewController(true, Policy{Mode: ModeSpin, DisableEveryN: 8, DisabledMode: ModeGreasePerConn}, rng)
		if c.DisabledByRule() && c.EffectiveMode() == ModeGreasePerConn {
			sawGrease = true
		}
	}
	if !sawGrease {
		t.Error("DisabledMode grease fallback never selected")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeSpin: "spin", ModeZero: "zero", ModeOne: "one",
		ModeGreasePerPacket: "grease-per-packet", ModeGreasePerConn: "grease-per-conn",
		Mode(99): "Mode(99)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

// Property: for any interleaving of received packet numbers, the endpoint
// state equals the value dictated by the packet with the largest PN.
func TestEndpointStateQuickLargestPNWins(t *testing.T) {
	f := func(pns []uint16, spins []bool, client bool) bool {
		if len(pns) == 0 || len(spins) == 0 {
			return true
		}
		s := NewEndpointState(client)
		largest := -1
		var largestSpin bool
		for i, pn := range pns {
			spin := spins[i%len(spins)]
			s.OnReceive(uint64(pn), spin)
			if int(pn) > largest {
				largest = int(pn)
				largestSpin = spin
			}
		}
		want := largestSpin
		if client {
			want = !largestSpin
		}
		return s.Value() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
