package core

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 5, 15, 12, 0, 0, 0, time.UTC)

// series builds an Observation sequence from (ms offset, pn, spin) triples.
func series(trip ...[3]int) []Observation {
	obs := make([]Observation, len(trip))
	for i, tr := range trip {
		obs[i] = Observation{
			T:    t0.Add(time.Duration(tr[0]) * time.Millisecond),
			PN:   uint64(tr[1]),
			Spin: tr[2] != 0,
		}
	}
	return obs
}

func TestSpinRTTsBasic(t *testing.T) {
	// Edges at 0ms (implicit start value 0), flip at 100ms, 200ms, 300ms.
	obs := series(
		[3]int{0, 1, 0}, [3]int{50, 2, 0},
		[3]int{100, 3, 1}, [3]int{150, 4, 1},
		[3]int{200, 5, 0},
		[3]int{300, 6, 1},
	)
	got := SpinRTTs(obs, false)
	want := []time.Duration{100 * time.Millisecond, 100 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpinRTTsTooShort(t *testing.T) {
	if got := SpinRTTs(nil, false); got != nil {
		t.Errorf("nil series produced %v", got)
	}
	if got := SpinRTTs(series([3]int{0, 1, 0}), false); got != nil {
		t.Errorf("single observation produced %v", got)
	}
	// Flips but only one edge → no sample.
	if got := SpinRTTs(series([3]int{0, 1, 0}, [3]int{100, 2, 1}), false); got != nil {
		t.Errorf("single edge produced %v", got)
	}
}

// TestSpinRTTsReordering reproduces Fig. 1b: a packet from before a spin
// edge arriving after it creates a spurious ultra-short cycle in received
// order (R) that disappears after sorting by packet number (S).
func TestSpinRTTsReordering(t *testing.T) {
	obs := series(
		[3]int{0, 1, 0},
		[3]int{100, 3, 1}, // edge (pn 2 overtaken)
		[3]int{101, 2, 0}, // late pre-edge packet → spurious edge
		[3]int{102, 4, 1}, // spurious edge back
		[3]int{200, 5, 0}, // genuine edge
	)
	r := SpinRTTs(obs, false)
	// Received order: edges at 100 (→1), 101 (→0), 102 (→1), 200 (→0):
	// samples 1ms, 1ms, 98ms.
	if len(r) != 3 || r[0] != time.Millisecond || r[1] != time.Millisecond {
		t.Fatalf("received-order samples = %v", r)
	}
	s := SpinRTTs(obs, true)
	// Sorted by pn: values 0,0,1,1,0 with edge timestamps 100 and 200 —
	// but sorting places pn2(t=101) before pn3(t=100): edge seen at t=100.
	if len(s) != 1 || s[0] != 100*time.Millisecond {
		t.Fatalf("sorted-order samples = %v", s)
	}
}

func TestSpinRTTsSortIsStableAndNonMutating(t *testing.T) {
	obs := series([3]int{0, 1, 0}, [3]int{100, 3, 1}, [3]int{50, 2, 0})
	cp := make([]Observation, len(obs))
	copy(cp, obs)
	SpinRTTs(obs, true)
	for i := range obs {
		if obs[i] != cp[i] {
			t.Fatal("SpinRTTs mutated its input")
		}
	}
}

func TestHasFlipsAndClassify(t *testing.T) {
	cases := []struct {
		obs  []Observation
		kind SeriesKind
	}{
		{nil, KindEmpty},
		{series([3]int{0, 1, 0}, [3]int{1, 2, 0}), KindAllZero},
		{series([3]int{0, 1, 1}, [3]int{1, 2, 1}), KindAllOne},
		{series([3]int{0, 1, 0}, [3]int{1, 2, 1}), KindFlipping},
	}
	for _, c := range cases {
		if got := ClassifySeries(c.obs); got != c.kind {
			t.Errorf("ClassifySeries = %v, want %v", got, c.kind)
		}
		if got := HasFlips(c.obs); got != (c.kind == KindFlipping) {
			t.Errorf("HasFlips = %v for %v", got, c.kind)
		}
	}
	for k, want := range map[SeriesKind]string{
		KindAllZero: "All Zero", KindAllOne: "All One",
		KindFlipping: "Spin", KindEmpty: "Empty", SeriesKind(9): "Unknown",
	} {
		if k.String() != want {
			t.Errorf("SeriesKind(%d).String() = %q", int(k), k.String())
		}
	}
}

func TestObserverSingleDirection(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	var got []time.Duration
	for _, ob := range series(
		[3]int{0, 1, 0},
		[3]int{100, 2, 1},
		[3]int{200, 3, 0},
		[3]int{310, 4, 1},
	) {
		if s, ok := o.Observe(ServerToClient, ob); ok {
			got = append(got, s.RTT)
		}
	}
	want := []time.Duration{100 * time.Millisecond, 110 * time.Millisecond}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	if m := o.MeanRTT(ServerToClient); m != 105*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
	if m := o.MeanRTT(ClientToServer); m != 0 {
		t.Errorf("mean of empty direction = %v", m)
	}
}

func TestObserverDirectionsIndependent(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	// Client→server edges at 0/100/200; server→client offset by 50ms.
	evts := []struct {
		dir Direction
		ms  int
		pn  int
		v   int
	}{
		{ClientToServer, 0, 1, 0}, {ServerToClient, 50, 1, 0},
		{ClientToServer, 100, 2, 1}, {ServerToClient, 150, 2, 1},
		{ClientToServer, 200, 3, 0}, {ServerToClient, 250, 3, 0},
	}
	for _, e := range evts {
		o.Observe(e.dir, Observation{T: t0.Add(time.Duration(e.ms) * time.Millisecond), PN: uint64(e.pn), Spin: e.v != 0})
	}
	if got := o.MeanRTT(ClientToServer); got != 100*time.Millisecond {
		t.Errorf("c2s mean = %v", got)
	}
	if got := o.MeanRTT(ServerToClient); got != 100*time.Millisecond {
		t.Errorf("s2c mean = %v", got)
	}
	if len(o.Samples()) != 2 {
		t.Errorf("total samples = %d, want 2", len(o.Samples()))
	}
}

func TestObserverPacketNumberGuard(t *testing.T) {
	reordered := series(
		[3]int{0, 1, 0},
		[3]int{100, 3, 1}, // genuine edge
		[3]int{101, 2, 0}, // late packet — guard must drop it
		[3]int{102, 4, 1},
		[3]int{200, 5, 0}, // genuine edge
		[3]int{300, 6, 1}, // genuine edge
	)
	// Without guard: spurious 1ms/1ms samples appear.
	plain := NewObserver(ObserverConfig{})
	for _, ob := range reordered {
		plain.Observe(ServerToClient, ob)
	}
	if len(plain.Samples()) != 4 {
		t.Fatalf("unguarded samples = %d, want 4", len(plain.Samples()))
	}
	// With guard: only the genuine 100ms cycles remain.
	guarded := NewObserver(ObserverConfig{UsePacketNumberGuard: true})
	var got []time.Duration
	for _, ob := range reordered {
		if s, ok := guarded.Observe(ServerToClient, ob); ok {
			got = append(got, s.RTT)
		}
	}
	if len(got) != 2 || got[0] != 100*time.Millisecond || got[1] != 100*time.Millisecond {
		t.Fatalf("guarded samples = %v", got)
	}
}

func TestObserverFilterMarksSamples(t *testing.T) {
	o := NewObserver(ObserverConfig{Filter: StaticThreshold{Min: 10 * time.Millisecond}})
	obs := series(
		[3]int{0, 1, 0},
		[3]int{100, 2, 1},
		[3]int{101, 3, 0}, // 1ms sample → filtered
		[3]int{201, 4, 1}, // 100ms sample → kept
	)
	for _, ob := range obs {
		o.Observe(ServerToClient, ob)
	}
	all, valid := o.Samples(), o.ValidSamples()
	if len(all) != 2 || len(valid) != 1 {
		t.Fatalf("all=%d valid=%d, want 2/1", len(all), len(valid))
	}
	if !all[0].Filtered || all[1].Filtered {
		t.Errorf("filter flags wrong: %+v", all)
	}
	if o.MeanRTT(ServerToClient) != 100*time.Millisecond {
		t.Errorf("mean includes filtered sample: %v", o.MeanRTT(ServerToClient))
	}
}

// Property: on a clean alternating series with constant period, both
// SpinRTTs orderings agree and every sample equals the period.
func TestSpinRTTsQuickCleanSeries(t *testing.T) {
	f := func(periodMS uint8, n uint8) bool {
		period := time.Duration(periodMS%200+1) * time.Millisecond
		count := int(n%20) + 3
		obs := make([]Observation, count)
		for i := range obs {
			obs[i] = Observation{T: t0.Add(time.Duration(i) * period), PN: uint64(i), Spin: i%2 == 1}
		}
		r := SpinRTTs(obs, false)
		s := SpinRTTs(obs, true)
		if len(r) != count-2 || len(s) != len(r) {
			return false
		}
		for i := range r {
			if r[i] != period || s[i] != period {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserverObserve(b *testing.B) {
	o := NewObserver(ObserverConfig{UsePacketNumberGuard: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Observe(ClientToServer, Observation{
			T:    t0.Add(time.Duration(i) * time.Millisecond),
			PN:   uint64(i),
			Spin: (i/50)%2 == 1,
		})
	}
}

func BenchmarkSpinRTTs(b *testing.B) {
	obs := make([]Observation, 1000)
	for i := range obs {
		obs[i] = Observation{T: t0.Add(time.Duration(i) * time.Millisecond), PN: uint64(i), Spin: (i/25)%2 == 1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SpinRTTs(obs, i%2 == 0)
	}
}
