package core

import (
	"fmt"
	"math/rand"
)

// Mode enumerates the spin-bit behaviours the paper distinguishes
// (Table 3): a spinning endpoint, the fixed-value variants used to disable
// the mechanism, and the two greasing styles RFC 9312 recommends.
type Mode int

const (
	// ModeSpin runs the RFC 9000 spin state machine.
	ModeSpin Mode = iota
	// ModeZero sends 0 on every packet ("All Zero" in the paper).
	ModeZero
	// ModeOne sends 1 on every packet ("All One").
	ModeOne
	// ModeGreasePerPacket sets the bit to an independent random value on
	// every packet.
	ModeGreasePerPacket
	// ModeGreasePerConn picks one random value per connection and keeps it.
	ModeGreasePerConn
)

// String returns the mode name used in reports.
func (m Mode) String() string {
	switch m {
	case ModeSpin:
		return "spin"
	case ModeZero:
		return "zero"
	case ModeOne:
		return "one"
	case ModeGreasePerPacket:
		return "grease-per-packet"
	case ModeGreasePerConn:
		return "grease-per-conn"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Policy configures the spin behaviour of an endpoint across connections.
type Policy struct {
	// Mode is the behaviour on connections where the spin bit is active.
	Mode Mode
	// DisableEveryN implements the RFC 9000 §17.4 mandate that even
	// endpoints using the spin bit MUST disable it on at least one in every
	// 16 connections (RFC 9312 recommends one in eight). Zero never
	// disables. Only meaningful when Mode == ModeSpin.
	DisableEveryN int
	// DisabledMode is the behaviour used on connections where
	// DisableEveryN triggered. The RFCs recommend greasing; measurements
	// show most deployments fall back to zero.
	DisabledMode Mode
}

// Controller drives the spin bit of one endpoint for one connection,
// combining the RFC state machine with a Policy. Create one per connection
// with NewController.
type Controller struct {
	state      *EndpointState
	mode       Mode // effective mode for this connection
	greaseVal  bool // fixed value for ModeGreasePerConn
	rng        *rand.Rand
	disabled   bool // this connection hit the 1-in-N disable rule
	sentFirst  bool
	packetsOut int
}

// NewController rolls the per-connection dice of the policy and returns the
// controller for a new connection. rng must be non-nil for any mode
// involving randomness (greasing or DisableEveryN > 0).
func NewController(isClient bool, p Policy, rng *rand.Rand) *Controller {
	c := &Controller{state: NewEndpointState(isClient), mode: p.Mode, rng: rng}
	if p.Mode == ModeSpin && p.DisableEveryN > 0 && rng.Intn(p.DisableEveryN) == 0 {
		c.disabled = true
		c.mode = p.DisabledMode
	}
	if c.mode == ModeGreasePerConn {
		c.greaseVal = rng.Intn(2) == 1
	}
	return c
}

// OnReceive feeds an incoming short-header packet into the spin state
// machine. It must be called for every 1-RTT packet regardless of mode so
// that mode changes and diagnostics stay consistent.
func (c *Controller) OnReceive(pn uint64, spin bool) {
	c.state.OnReceive(pn, spin)
}

// Next returns the spin value for the next outgoing short-header packet.
func (c *Controller) Next() bool {
	c.sentFirst = true
	c.packetsOut++
	switch c.mode {
	case ModeSpin:
		return c.state.Value()
	case ModeZero:
		return false
	case ModeOne:
		return true
	case ModeGreasePerPacket:
		return c.rng.Intn(2) == 1
	case ModeGreasePerConn:
		return c.greaseVal
	default:
		return false
	}
}

// Spinning reports whether this connection actively runs the spin state
// machine (i.e. the mechanism is enabled and not disabled by the 1-in-N
// rule).
func (c *Controller) Spinning() bool { return c.mode == ModeSpin }

// DisabledByRule reports whether the RFC 1-in-N rule disabled the spin bit
// on this particular connection.
func (c *Controller) DisabledByRule() bool { return c.disabled }

// EffectiveMode returns the mode in force on this connection after the
// per-connection dice roll.
func (c *Controller) EffectiveMode() Mode { return c.mode }
