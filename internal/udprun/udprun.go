// Package udprun drives sans-IO transport endpoints over real UDP
// sockets. The same connection code that runs under the virtual-time
// emulator (internal/netem) runs here against the wall clock, which is how
// cmd/spinserver and cmd/spinprobe operate on real networks.
package udprun

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"quicspin/internal/transport"
)

// readChunk is the receive buffer size (≥ any QUIC-lite datagram).
const readChunk = 2048

// pollGranularity bounds how long the run loop sleeps in reads so that
// context cancellation and external Kicks are honoured promptly.
const pollGranularity = 50 * time.Millisecond

// ConnRunner drives one client connection over a PacketConn.
type ConnRunner struct {
	// OnActivity runs after every receive or timer event while holding the
	// runner lock; use it to queue stream data and inspect state.
	OnActivity func(conn *transport.Conn, now time.Time)

	conn   *transport.Conn
	pc     net.PacketConn
	remote net.Addr

	mu sync.Mutex
}

// NewConnRunner wraps conn for IO via pc toward remote.
func NewConnRunner(conn *transport.Conn, pc net.PacketConn, remote net.Addr) *ConnRunner {
	return &ConnRunner{conn: conn, pc: pc, remote: remote}
}

// Conn returns the driven connection. Callers must hold no assumptions
// about concurrent state changes; use Do for synchronised access.
func (r *ConnRunner) Conn() *transport.Conn { return r.conn }

// Do runs fn with the runner lock held, for safe cross-goroutine access to
// the connection (e.g. queueing a request from the main goroutine).
func (r *ConnRunner) Do(fn func(conn *transport.Conn)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.conn)
	r.flushLocked(time.Now())
}

// Run pumps the connection until it closes, the context is cancelled, or a
// socket error occurs. It blocks; run it in its own goroutine if needed.
func (r *ConnRunner) Run(ctx context.Context) error {
	buf := make([]byte, readChunk)
	r.Do(func(*transport.Conn) {}) // transmit the first flight
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		now := time.Now()
		r.conn.Advance(now)
		if r.OnActivity != nil {
			r.OnActivity(r.conn, now)
		}
		r.flushLocked(now)
		closed := r.conn.Closed()
		deadline, ok := r.conn.NextTimeout()
		r.mu.Unlock()
		if closed {
			return nil
		}
		readDeadline := time.Now().Add(pollGranularity)
		if ok && deadline.Before(readDeadline) {
			readDeadline = deadline
		}
		if err := r.pc.SetReadDeadline(readDeadline); err != nil {
			return fmt.Errorf("udprun: set deadline: %w", err)
		}
		n, _, err := r.pc.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return fmt.Errorf("udprun: read: %w", err)
		}
		r.mu.Lock()
		now = time.Now()
		_ = r.conn.Receive(now, buf[:n]) // malformed input only stalls this conn
		if r.OnActivity != nil {
			r.OnActivity(r.conn, now)
		}
		r.flushLocked(now)
		r.mu.Unlock()
	}
}

func (r *ConnRunner) flushLocked(now time.Time) {
	for _, d := range r.conn.Poll(now) {
		if _, err := r.pc.WriteTo(d, r.remote); err != nil {
			return // transient send errors are handled by loss recovery
		}
	}
}

// EndpointRunner drives a server transport.Endpoint over a PacketConn.
type EndpointRunner struct {
	// OnActivity runs after each event with the lock held, letting the
	// application serve completed request streams.
	OnActivity func(ep *transport.Endpoint, now time.Time)

	ep *transport.Endpoint
	pc net.PacketConn

	mu    sync.Mutex
	peers map[string]net.Addr
}

// NewEndpointRunner wraps ep for IO via pc.
func NewEndpointRunner(ep *transport.Endpoint, pc net.PacketConn) *EndpointRunner {
	return &EndpointRunner{ep: ep, pc: pc, peers: map[string]net.Addr{}}
}

// Endpoint returns the driven endpoint.
func (r *EndpointRunner) Endpoint() *transport.Endpoint { return r.ep }

// Do runs fn with the runner lock held and flushes afterwards.
func (r *EndpointRunner) Do(fn func(ep *transport.Endpoint)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.ep)
	r.flushLocked(time.Now())
}

// Run pumps the endpoint until the context is cancelled or a socket error
// occurs.
func (r *EndpointRunner) Run(ctx context.Context) error {
	buf := make([]byte, readChunk)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		now := time.Now()
		r.ep.Advance(now)
		if r.OnActivity != nil {
			r.OnActivity(r.ep, now)
		}
		r.flushLocked(now)
		deadline, ok := r.ep.NextTimeout()
		r.mu.Unlock()

		readDeadline := time.Now().Add(pollGranularity)
		if ok && deadline.Before(readDeadline) {
			readDeadline = deadline
		}
		if err := r.pc.SetReadDeadline(readDeadline); err != nil {
			return fmt.Errorf("udprun: set deadline: %w", err)
		}
		n, from, err := r.pc.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return fmt.Errorf("udprun: read: %w", err)
		}
		r.mu.Lock()
		now = time.Now()
		key := from.String()
		r.peers[key] = from
		_ = r.ep.Receive(now, key, buf[:n]) // unroutable datagrams dropped
		if r.OnActivity != nil {
			r.OnActivity(r.ep, now)
		}
		r.flushLocked(now)
		r.mu.Unlock()
	}
}

func (r *EndpointRunner) flushLocked(now time.Time) {
	for _, out := range r.ep.Poll(now) {
		addr := r.peers[out.Peer]
		if addr == nil {
			continue
		}
		if _, err := r.pc.WriteTo(out.Data, addr); err != nil {
			return
		}
	}
}
