package udprun

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// faultPair returns a fault-wrapped sender and a plain receiver on
// loopback UDP.
func faultPair(t *testing.T, cfg FaultConfig) (*FaultConn, net.PacketConn, net.Addr) {
	t.Helper()
	recv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	send, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		recv.Close()
		t.Fatal(err)
	}
	fc := NewFaultConn(send, cfg)
	t.Cleanup(func() { send.Close(); recv.Close() })
	return fc, recv, recv.LocalAddr()
}

// collect reads datagrams until the deadline and returns them.
func collect(t *testing.T, pc net.PacketConn, deadline time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	buf := make([]byte, 2048)
	end := time.Now().Add(deadline)
	for {
		pc.SetReadDeadline(end)
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			return out
		}
		out = append(out, append([]byte(nil), buf[:n]...))
	}
}

func TestFaultConnDrop(t *testing.T) {
	fc, recv, addr := faultPair(t, FaultConfig{Seed: 1, Drop: 1})
	for i := 0; i < 5; i++ {
		if _, err := fc.WriteTo([]byte("doomed"), addr); err != nil {
			t.Fatalf("dropped write reported error: %v", err)
		}
	}
	if got := collect(t, recv, 100*time.Millisecond); len(got) != 0 {
		t.Errorf("Drop=1 delivered %d datagrams", len(got))
	}
	if st := fc.Stats(); st.Dropped != 5 || st.Sent != 5 {
		t.Errorf("stats = %+v, want 5 sent / 5 dropped", st)
	}
}

func TestFaultConnDuplicate(t *testing.T) {
	fc, recv, addr := faultPair(t, FaultConfig{Seed: 2, Dup: 1})
	if _, err := fc.WriteTo([]byte("twice"), addr); err != nil {
		t.Fatal(err)
	}
	got := collect(t, recv, 200*time.Millisecond)
	if len(got) != 2 || !bytes.Equal(got[0], got[1]) {
		t.Fatalf("Dup=1 delivered %d datagrams, want 2 identical", len(got))
	}
	if st := fc.Stats(); st.Duplicated != 1 {
		t.Errorf("stats = %+v, want 1 duplicated", st)
	}
}

func TestFaultConnCorruptFlipsExactlyOneBit(t *testing.T) {
	fc, recv, addr := faultPair(t, FaultConfig{Seed: 3, Corrupt: 1})
	orig := []byte("payload-payload-payload")
	if _, err := fc.WriteTo(orig, addr); err != nil {
		t.Fatal(err)
	}
	got := collect(t, recv, 200*time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(got))
	}
	if len(got[0]) != len(orig) {
		t.Fatalf("corrupted datagram changed length: %d -> %d", len(orig), len(got[0]))
	}
	flipped := 0
	for i := range orig {
		diff := orig[i] ^ got[0][i]
		for ; diff != 0; diff &= diff - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", flipped)
	}
	// The caller's buffer must stay untouched (corruption copies).
	if !bytes.Equal(orig, []byte("payload-payload-payload")) {
		t.Error("corruption mutated the caller's buffer")
	}
}

func TestFaultConnDelayReorders(t *testing.T) {
	fc, recv, addr := faultPair(t, FaultConfig{Seed: 4, Delay: 1, MaxDelay: 50 * time.Millisecond})
	if _, err := fc.WriteTo([]byte("held"), addr); err != nil {
		t.Fatal(err)
	}
	// The second datagram bypasses the fault conn entirely, so it must
	// overtake the held-back first one.
	direct, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if _, err := direct.WriteTo([]byte("prompt"), addr); err != nil {
		t.Fatal(err)
	}
	got := collect(t, recv, 300*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("delivered %d datagrams, want 2", len(got))
	}
	if string(got[0]) != "prompt" || string(got[1]) != "held" {
		t.Errorf("delivery order = %q, %q; want prompt before held", got[0], got[1])
	}
	if st := fc.Stats(); st.Delayed != 1 {
		t.Errorf("stats = %+v, want 1 delayed", st)
	}
}

func TestFaultConfigEnabled(t *testing.T) {
	if (FaultConfig{}).Enabled() {
		t.Error("zero FaultConfig reports enabled")
	}
	for _, c := range []FaultConfig{{Drop: 0.1}, {Dup: 0.1}, {Corrupt: 0.1}, {Delay: 0.1}} {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
}
