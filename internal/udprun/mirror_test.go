package udprun_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"quicspin/internal/flowtable"
	"quicspin/internal/udprun"
	"quicspin/internal/wire"
)

// TestMirrorFeedsFlowtable sends crafted spinning short-header datagrams
// at a mirror socket on loopback and checks that a flowtable fed from the
// mirror's sink tracks the flow and measures its spin RTT.
func TestMirrorFeedsFlowtable(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer pc.Close()
	sender, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer sender.Close()

	tbl := flowtable.New(flowtable.Config{Slots: 64, DCIDLen: 8})
	local := flowtable.HashAddr(pc.LocalAddr().String())
	var mu sync.Mutex
	got := 0
	mir := udprun.NewMirror(pc, func(now time.Time, from string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		tbl.Ingest(now.UnixNano(), flowtable.HashAddr(from), local, data)
		got++
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- mir.Run(ctx) }()

	cid := wire.NewConnectionID([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	const nPkts = 6
	for pn := uint64(0); pn < nPkts; pn++ {
		h := &wire.Header{DstConnID: cid, PacketNumber: pn, SpinBit: pn%2 == 1}
		pkt, err := wire.AppendShortHeader(nil, h, wire.PingFrame{}.Append(nil), wire.NoAckedPacket)
		if err != nil {
			t.Fatalf("building packet: %v", err)
		}
		if _, err := sender.WriteTo(pkt, pc.LocalAddr()); err != nil {
			t.Fatalf("send: %v", err)
		}
		time.Sleep(5 * time.Millisecond) // spin flips every packet: gap ≈ RTT
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n >= nPkts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror saw %d/%d datagrams before deadline", n, nPkts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("mirror run ended with %v, want context.Canceled", err)
	}

	mu.Lock()
	defer mu.Unlock()
	fs, ok := tbl.Lookup(flowtable.HashAddr(sender.LocalAddr().String()), local)
	if !ok {
		t.Fatalf("mirror flow not tracked")
	}
	if fs.Packets[0] != nPkts {
		t.Fatalf("flow saw %d packets, want %d", fs.Packets[0], nPkts)
	}
	// Spin flips every packet: nPkts packets yield nPkts-3 one-direction
	// samples (value capture + first edge consume two flips).
	if fs.Samples == 0 {
		t.Fatalf("mirror flow produced no RTT samples: %+v", fs)
	}
}
