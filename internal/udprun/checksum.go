package udprun

import (
	"encoding/binary"
	"hash/crc32"
	"net"
)

// datagramCRC is the CRC-32C table framing checksummed datagrams.
var datagramCRC = crc32.MakeTable(crc32.Castagnoli)

// ChecksumConn adds per-datagram integrity to a PacketConn: WriteTo
// appends a CRC-32C trailer, ReadFrom verifies and strips it, silently
// discarding datagrams that fail (corrupted in transit) or are too short
// to carry a trailer (runts). A corrupted datagram thereby becomes a
// lost datagram — the failure mode the QUIC-lite transport's loss
// recovery already heals by retransmission — instead of mangled bytes
// reaching the stream layer. This models what real deployments get from
// UDP checksums and link-layer CRCs; the emulated scan path never sees
// it because corruption there is not part of the model.
//
// Both peers of an exchange must wrap their sockets: the trailer is part
// of the wire format, not an optional extra.
type ChecksumConn struct {
	net.PacketConn
}

// NewChecksumConn wraps pc with CRC-32C datagram framing. Wrap a
// FaultConn inside (not outside) a ChecksumConn, so injected corruption
// mangles the protected frame and is caught on receive.
func NewChecksumConn(pc net.PacketConn) *ChecksumConn {
	return &ChecksumConn{PacketConn: pc}
}

// WriteTo sends b with its CRC-32C trailer appended. The returned length
// is in caller bytes (the trailer is accounting-invisible).
func (c *ChecksumConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	framed := make([]byte, 0, len(b)+crc32.Size)
	framed = append(framed, b...)
	framed = binary.BigEndian.AppendUint32(framed, crc32.Checksum(b, datagramCRC))
	n, err := c.PacketConn.WriteTo(framed, addr)
	if n > len(b) {
		n = len(b)
	}
	return n, err
}

// ReadFrom returns the next datagram whose trailer verifies, stripped of
// the trailer. Corrupt and runt datagrams are dropped and the read
// continues; deadlines on the underlying conn still apply and surface as
// errors.
func (c *ChecksumConn) ReadFrom(p []byte) (int, net.Addr, error) {
	buf := make([]byte, len(p)+crc32.Size)
	for {
		n, addr, err := c.PacketConn.ReadFrom(buf)
		if err != nil {
			return 0, addr, err
		}
		if n < crc32.Size {
			continue // runt: cannot carry a trailer
		}
		body := buf[:n-crc32.Size]
		if crc32.Checksum(body, datagramCRC) != binary.BigEndian.Uint32(buf[n-crc32.Size:n]) {
			continue // corrupted in transit: treat as lost
		}
		return copy(p, body), addr, nil
	}
}
