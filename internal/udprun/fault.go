package udprun

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultConfig parameterises seeded datagram fault injection for a
// PacketConn: every outbound datagram is independently dropped,
// duplicated, bit-flipped or held back according to the configured
// probabilities. Wrapping both peers of an exchange therefore subjects
// both directions to loss, duplication, corruption and reordering (a
// delayed datagram overtakes later undelayed ones), which is how the
// shard collector exchange is chaos-tested without leaving the process.
//
// Faults draw from one seeded rng, so a fixed seed yields a fixed fault
// pattern for a fixed send sequence. The transports above are expected to
// absorb every fault (retransmission, dedup, CRC framing); fault
// injection must never change what the application layer finally agrees
// on — only how hard the exchange has to work for it.
type FaultConfig struct {
	// Seed initialises the fault rng. Zero is a valid seed.
	Seed int64
	// Drop is the probability an outbound datagram is silently discarded.
	Drop float64
	// Dup is the probability a datagram is sent twice.
	Dup float64
	// Corrupt is the probability exactly one bit of the datagram is
	// flipped before sending (single-bit flips are always detectable by
	// the CRC32 framing above this layer).
	Corrupt float64
	// Delay is the probability a datagram is held back for a uniform
	// duration in (0, MaxDelay] before sending — later datagrams overtake
	// it, reordering the stream.
	Delay float64
	// MaxDelay bounds the hold-back; zero means 25ms.
	MaxDelay time.Duration
}

// Enabled reports whether any fault has a non-zero probability.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Corrupt > 0 || c.Delay > 0
}

func (c FaultConfig) maxDelay() time.Duration {
	if c.MaxDelay <= 0 {
		return 25 * time.Millisecond
	}
	return c.MaxDelay
}

// FaultStats counts the faults a FaultConn has injected.
type FaultStats struct {
	Sent, Dropped, Duplicated, Corrupted, Delayed int64
}

// FaultConn wraps a PacketConn and applies a FaultConfig to every WriteTo.
// Reads pass through untouched: wrapping each peer's socket faults that
// peer's outbound direction, so both directions are covered when both
// ends wrap. Safe for concurrent use.
type FaultConn struct {
	net.PacketConn

	cfg FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultConn wraps pc with seeded fault injection.
func NewFaultConn(pc net.PacketConn, cfg FaultConfig) *FaultConn {
	return &FaultConn{PacketConn: pc, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// WriteTo applies the fault plan to one datagram. A dropped datagram
// still reports success — from the sender's perspective it went out and
// the network ate it.
func (f *FaultConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	f.mu.Lock()
	f.stats.Sent++
	drop := f.rng.Float64() < f.cfg.Drop
	dup := f.rng.Float64() < f.cfg.Dup
	corrupt := f.rng.Float64() < f.cfg.Corrupt
	delay := f.rng.Float64() < f.cfg.Delay
	var flipBit int
	var holdFor time.Duration
	if corrupt && len(b) > 0 {
		flipBit = f.rng.Intn(len(b) * 8)
	}
	if delay {
		holdFor = time.Duration(1 + f.rng.Int63n(int64(f.cfg.maxDelay())))
	}
	switch {
	case drop:
		f.stats.Dropped++
	default:
		if dup {
			f.stats.Duplicated++
		}
		if corrupt && len(b) > 0 {
			f.stats.Corrupted++
		}
		if delay {
			f.stats.Delayed++
		}
	}
	f.mu.Unlock()

	if drop {
		return len(b), nil
	}
	data := b
	if corrupt && len(b) > 0 {
		data = append([]byte(nil), b...)
		data[flipBit/8] ^= 1 << (flipBit % 8)
	}
	copies := 1
	if dup {
		copies = 2
	}
	if delay {
		// The held-back copy is written from a timer goroutine; a send on
		// a socket closed in the meantime just errors and is discarded,
		// like any datagram still in flight when its sender dies.
		held := append([]byte(nil), data...)
		dst := addr
		n := copies
		time.AfterFunc(holdFor, func() {
			for i := 0; i < n; i++ {
				_, _ = f.PacketConn.WriteTo(held, dst)
			}
		})
		return len(b), nil
	}
	for i := 0; i < copies; i++ {
		if _, err := f.PacketConn.WriteTo(data, addr); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultConn) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
