package udprun

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// checksumPair returns checksum-framed sender and receiver sockets on
// loopback UDP, the sender optionally corrupted by a FaultConn inside
// the framing.
func checksumPair(t *testing.T, faults *FaultConfig) (*ChecksumConn, *ChecksumConn, net.Addr) {
	t.Helper()
	recv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	send, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		recv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close(); recv.Close() })
	sender := net.PacketConn(send)
	if faults != nil {
		sender = NewFaultConn(sender, *faults)
	}
	return NewChecksumConn(sender), NewChecksumConn(recv), recv.LocalAddr()
}

func TestChecksumConnRoundTrip(t *testing.T) {
	send, recv, addr := checksumPair(t, nil)
	msg := []byte("framed datagram")
	n, err := send.WriteTo(msg, addr)
	if err != nil || n != len(msg) {
		t.Fatalf("WriteTo = %d, %v; want %d bytes (trailer invisible to the caller)", n, err, len(msg))
	}
	buf := make([]byte, 2048)
	recv.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err = recv.ReadFrom(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("ReadFrom = %q, %v; want %q", buf[:n], err, msg)
	}
}

// TestChecksumConnDropsCorruption pins the corruption-to-loss
// degradation: every bit-flipped datagram is discarded by the receiver,
// and clean ones keep flowing on the same socket.
func TestChecksumConnDropsCorruption(t *testing.T) {
	send, recv, addr := checksumPair(t, &FaultConfig{Seed: 7, Corrupt: 1})
	for i := 0; i < 5; i++ {
		if _, err := send.WriteTo([]byte("mangled in transit"), addr); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 2048)
	recv.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if n, _, err := recv.ReadFrom(buf); err == nil {
		t.Fatalf("corrupted datagram delivered: %q", buf[:n])
	}
	// The same receiver still accepts clean traffic afterwards.
	cleanSock, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanSock.Close()
	if _, err := NewChecksumConn(cleanSock).WriteTo([]byte("intact"), addr); err != nil {
		t.Fatal(err)
	}
	recv.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := recv.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "intact" {
		t.Fatalf("clean datagram after corruption = %q, %v", buf[:n], err)
	}
}

// TestChecksumConnDropsRuntsAndRaw checks that unframed and too-short
// datagrams from a non-speaking peer are dropped rather than surfaced.
func TestChecksumConnDropsRuntsAndRaw(t *testing.T) {
	_, recv, addr := checksumPair(t, nil)
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for _, payload := range [][]byte{{}, {1}, {1, 2, 3}, []byte("unframed datagram that fails the trailer check")} {
		if _, err := raw.WriteTo(payload, addr); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 2048)
	recv.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if n, _, err := recv.ReadFrom(buf); err == nil {
		t.Fatalf("unframed datagram delivered: %q", buf[:n])
	}
}
