package udprun

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// Mirror is a passive datagram reader: it pumps a PacketConn and hands
// every received datagram to a sink without ever transmitting. This is the
// real-socket vantage for on-path observation (cmd/spinwatch): point QUIC
// traffic — or a port-mirror replay of it — at the socket and observe.
type Mirror struct {
	pc   net.PacketConn
	sink func(now time.Time, from string, data []byte)
}

// NewMirror wraps pc; every datagram is delivered to sink with the wall
// arrival time and the sender address. The data slice is only valid for
// the duration of the call (the sink must not retain it).
func NewMirror(pc net.PacketConn, sink func(now time.Time, from string, data []byte)) *Mirror {
	return &Mirror{pc: pc, sink: sink}
}

// Run pumps the socket until the context is cancelled or a socket error
// occurs. It blocks; run it in its own goroutine if needed.
func (m *Mirror) Run(ctx context.Context) error {
	buf := make([]byte, readChunk)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := m.pc.SetReadDeadline(time.Now().Add(pollGranularity)); err != nil {
			return fmt.Errorf("udprun: set deadline: %w", err)
		}
		n, from, err := m.pc.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return fmt.Errorf("udprun: mirror read: %w", err)
		}
		m.sink(time.Now(), from.String(), buf[:n])
	}
}
