package udprun

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"quicspin/internal/core"
	"quicspin/internal/h3"
	"quicspin/internal/transport"
)

// startServer launches an HTTP/3-lite echo server on a loopback UDP socket
// and returns its address and a stop function.
func startServer(t *testing.T, policy core.Policy) (net.Addr, func()) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	ep := transport.NewEndpoint(func(peer string) transport.Config {
		return transport.Config{Rng: rng, SpinPolicy: policy}
	})
	srv := h3.NewServer(func(peer string, req *h3.Request) *h3.Response {
		return &h3.Response{
			Status:  200,
			Headers: map[string]string{"server": "quicspin-test"},
			Body:    make([]byte, 30000),
		}
	})
	runner := NewEndpointRunner(ep, pc)
	runner.OnActivity = func(ep *transport.Endpoint, now time.Time) {
		for _, conn := range ep.Conns() {
			srv.Serve("", conn, now)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = runner.Run(ctx)
	}()
	return pc.LocalAddr(), func() {
		cancel()
		pc.Close()
		<-done
	}
}

func doRequest(t *testing.T, addr net.Addr) (*h3.Response, *transport.Conn) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	conn := transport.NewClientConn(transport.Config{
		Rng:         rand.New(rand.NewSource(5)),
		IdleTimeout: 5 * time.Second,
	}, time.Now())
	hc := h3.NewClientConn(conn)
	id, err := hc.Do(&h3.Request{Method: "GET", Authority: "www.test.invalid", Path: "/", Headers: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	runner := NewConnRunner(conn, pc, addr)
	var resp *h3.Response
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	runner.OnActivity = func(c *transport.Conn, now time.Time) {
		if resp != nil {
			return
		}
		if r, complete, err := hc.Response(id); complete {
			if err != nil {
				t.Errorf("response parse: %v", err)
			}
			resp = r
			c.Close(now, 0, "done")
		}
	}
	if err := runner.Run(ctx); err != nil && ctx.Err() == nil {
		t.Fatalf("runner: %v", err)
	}
	if resp == nil {
		t.Fatalf("no response within deadline; stats=%+v", conn.Stats())
	}
	return resp, conn
}

func TestRequestOverRealUDP(t *testing.T) {
	addr, stop := startServer(t, core.Policy{Mode: core.ModeSpin})
	defer stop()
	resp, conn := doRequest(t, addr)
	if resp.Status != 200 || len(resp.Body) != 30000 {
		t.Fatalf("response = %d, %d body bytes", resp.Status, len(resp.Body))
	}
	if resp.Server() != "quicspin-test" {
		t.Errorf("server header = %q", resp.Server())
	}
	if !conn.HandshakeConfirmed() {
		t.Error("handshake not confirmed")
	}
	if !conn.RTT().HasSample() {
		t.Error("no RTT samples over real UDP")
	}
	if len(conn.Observations()) == 0 {
		t.Error("no spin observations")
	}
}

func TestSpinPolicyVisibleOverUDP(t *testing.T) {
	addr, stop := startServer(t, core.Policy{Mode: core.ModeOne})
	defer stop()
	_, conn := doRequest(t, addr)
	if got := core.ClassifySeries(conn.Observations()); got != core.KindAllOne {
		t.Errorf("observed series = %v, want All One", got)
	}
}
