package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Sum != 5.555 {
		t.Errorf("sum = %v, want 5.555", s.Sum)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	st := r.Stage("stage_seconds", "handshake", DurationBuckets)
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(1)
	st.Start(time.Now()).End(time.Now())
	r.SetSpanHook(func(string, time.Time, time.Duration) {})
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

func TestStageRecordsSpans(t *testing.T) {
	r := New()
	var hookStage string
	var hookDur time.Duration
	r.SetSpanHook(func(stage string, start time.Time, d time.Duration) {
		hookStage, hookDur = stage, d
	})
	st := r.Stage("spinscan_stage_seconds", "handshake", DurationBuckets)
	t0 := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	sp := st.Start(t0)
	sp.End(t0.Add(30 * time.Millisecond))
	if hookStage != "handshake" || hookDur != 30*time.Millisecond {
		t.Errorf("hook saw (%q, %v)", hookStage, hookDur)
	}
	snap := r.Snapshot()
	h, ok := snap.Histograms[`spinscan_stage_seconds{stage="handshake"}`]
	if !ok {
		t.Fatalf("stage histogram missing; have %v", snap.Histograms)
	}
	if h.Count != 1 {
		t.Errorf("stage count = %d, want 1", h.Count)
	}
}

// TestConcurrentUse exercises parallel writers against snapshot readers;
// run under -race (scripts/check.sh does).
func TestConcurrentUse(t *testing.T) {
	r := New()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A snapshot/exposition reader racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total")
			h := r.Histogram("conc_seconds", DurationBuckets)
			g := r.Gauge("conc_gauge")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i%10) / 100)
				g.Add(1)
				// Late registration races registry lookups too.
				r.Counter(Name("conc_labelled_total", "w", "x")).Inc()
			}
		}(w)
	}
	// Wait for writers, then stop the reader.
	<-waitWriters(r, writers*perWriter)
	close(stop)
	wg.Wait()

	if got := r.Counter("conc_total").Value(); got != writers*perWriter {
		t.Errorf("conc_total = %d, want %d", got, writers*perWriter)
	}
	if got := r.Counter(Name("conc_labelled_total", "w", "x")).Value(); got != writers*perWriter {
		t.Errorf("labelled = %d, want %d", got, writers*perWriter)
	}
	snap := r.Snapshot()
	if snap.Histograms["conc_seconds"].Count != writers*perWriter {
		t.Errorf("histogram count = %d", snap.Histograms["conc_seconds"].Count)
	}
}

// waitWriters returns a channel closed once conc_total reaches want.
func waitWriters(r *Registry, want int64) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for r.Counter("conc_total").Value() < want {
			time.Sleep(time.Millisecond)
		}
		close(ch)
	}()
	return ch
}

func TestNameAndEscaping(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Errorf("Name = %q", got)
	}
	if got := Name("x_total", "class", "timeout"); got != `x_total{class="timeout"}` {
		t.Errorf("Name = %q", got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Errorf("Name = %q", got)
	}
	if got := Name("x", "a", "q\"uo\\te\n"); got != `x{a="q\"uo\\te\n"}` {
		t.Errorf("escaped Name = %q", got)
	}
}

func TestCounterTotalAcrossLabels(t *testing.T) {
	r := New()
	r.Counter(Name("errs_total", "class", "timeout")).Add(3)
	r.Counter(Name("errs_total", "class", "reset")).Add(2)
	r.Counter("other_total").Add(10)
	if got := r.CounterTotal("errs_total"); got != 5 {
		t.Errorf("CounterTotal = %d, want 5", got)
	}
}

// TestPrometheusGolden pins the full text exposition of a small registry.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("scan_domains_total").Add(12)
	r.Counter(Name("scan_errs_total", "class", "reset")).Add(2)
	r.Counter(Name("scan_errs_total", "class", "timeout")).Add(5)
	r.Gauge("scan_week").Set(3)
	h := r.Histogram(Name("scan_stage_seconds", "stage", "handshake"), []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	hp := r.Histogram("scan_depth", []float64{0, 1})
	hp.Observe(0)
	hp.Observe(1)
	hp.Observe(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE scan_depth histogram
scan_depth_bucket{le="0"} 1
scan_depth_bucket{le="1"} 3
scan_depth_bucket{le="+Inf"} 3
scan_depth_sum 2
scan_depth_count 3
# TYPE scan_domains_total counter
scan_domains_total 12
# TYPE scan_errs_total counter
scan_errs_total{class="reset"} 2
scan_errs_total{class="timeout"} 5
# TYPE scan_stage_seconds histogram
scan_stage_seconds_bucket{stage="handshake",le="0.01"} 1
scan_stage_seconds_bucket{stage="handshake",le="0.1"} 2
scan_stage_seconds_bucket{stage="handshake",le="+Inf"} 3
scan_stage_seconds_sum{stage="handshake"} 0.555
scan_stage_seconds_count{stage="handshake"} 3
# TYPE scan_week gauge
scan_week 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// BenchmarkCounterInc is the hot-path budget check: must report 0 allocs/op.
func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncDisabled measures the disabled (nil) path.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve must also report 0 allocs/op.
func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_seconds", DurationBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}

// BenchmarkSpan covers the full stage start/end path.
func BenchmarkSpan(b *testing.B) {
	r := New()
	st := r.Stage("bench_stage_seconds", "handshake", DurationBuckets)
	t0 := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Start(t0).End(t0.Add(time.Duration(i%1000) * time.Microsecond))
	}
}

// TestCounterHotPathAllocFree asserts the acceptance criterion (0 allocs)
// in a regular test so plain `go test` enforces it, not only -bench runs.
func TestCounterHotPathAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("alloc_total")
	h := r.Histogram("alloc_seconds", DurationBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(0.01)
	})
	if allocs != 0 {
		t.Errorf("hot path allocates %v allocs/op, want 0", allocs)
	}
}
