// Package telemetry is the campaign observability substrate: a stdlib-only
// registry of named counters, gauges and fixed-bucket histograms, plus a
// lightweight span primitive for coarse scan stages (resolve → handshake →
// request → redirect → close).
//
// The paper's measurement campaign (§3.2) runs weekly scans over >200 M
// domains; at that scale the operators' primary tool is live visibility
// into throughput, error classes and per-stage latency. This package keeps
// that visibility cheap enough to leave always-on:
//
//   - The mutation hot path (Counter.Inc, Histogram.Observe) is
//     allocation-free and lock-free (atomics only); see the package
//     benchmarks with -benchmem.
//   - Every metric type has a no-op nil receiver, and a nil *Registry
//     hands out nil instruments, so a disabled scan pays only an
//     inlineable nil check per record site.
//   - Readers (Snapshot, WritePrometheus) never block writers.
//
// Metrics are identified by their full Prometheus series name, including
// any label set, e.g. `spinscan_conn_errors_total{class="timeout"}`. Use
// Name to build labelled series names; resolve instruments once at setup
// and keep the pointers on the hot path.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. A nil Counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe for concurrent use; no-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; negative deltas are ignored to keep
// the counter monotone). No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down.
// A nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations ≤ its upper bound; the +Inf bucket is the
// total count). Buckets are fixed at construction, so observations are
// allocation-free. A nil Histogram is a valid no-op.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram copies and sorts bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs))}
}

// Observe records one sample. Safe for concurrent use, allocation-free;
// no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds. No-op on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (non-cumulative); Count is the +Inf total.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// snapshot copies the histogram state. Individual fields are each read
// atomically; the set is not a consistent cut (writers are never blocked),
// which is fine for progress reporting.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// SpanHook observes completed spans: stage name, start time and duration.
// Times are in the caller's clock domain (the scanner passes virtual time).
type SpanHook func(stage string, start time.Time, d time.Duration)

// Stage is a named coarse phase of a scan whose durations are recorded
// into a histogram and, when set, forwarded to the registry's span hook.
// A nil Stage is a valid no-op.
type Stage struct {
	reg  *Registry
	name string
	h    *Histogram
}

// Start opens a span at the given instant. Valid on a nil receiver (the
// returned span's End is then a no-op).
func (s *Stage) Start(at time.Time) Span {
	return Span{stage: s, start: at}
}

// Span is an open interval of a Stage. It is a value type: passing it
// around allocates nothing.
type Span struct {
	stage *Stage
	start time.Time
}

// End closes the span at the given instant, recording the duration.
func (sp Span) End(at time.Time) {
	s := sp.stage
	if s == nil {
		return
	}
	d := at.Sub(sp.start)
	if d < 0 {
		d = 0
	}
	s.h.ObserveDuration(d)
	if hook := s.reg.hook.Load(); hook != nil {
		(*hook)(s.name, sp.start, d)
	}
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use. A nil *Registry is valid and hands out nil (no-op)
// instruments, so instrumented code needs no enabled/disabled branches.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	helps  map[string]string // base family name → HELP text
	hook   atomic.Pointer[SpanHook]
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// SetHelp attaches a HELP string to a metric family (the base name,
// without labels). WritePrometheus emits it as a `# HELP` line, once per
// family regardless of how many labeled series the family has. An empty
// help clears the entry. No-op on a nil registry.
func (r *Registry) SetHelp(base, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if help == "" {
		delete(r.helps, base)
		return
	}
	if r.helps == nil {
		r.helps = map[string]string{}
	}
	r.helps[base] = help
}

// Describe registers HELP strings for several metric families at once —
// the batch form of SetHelp, for subsystems that contribute a family of
// related metrics (the shard supervisor, the scanner). Empty values clear
// entries, like SetHelp. No-op on a nil registry.
func (r *Registry) Describe(help map[string]string) {
	for base, text := range help {
		r.SetHelp(base, text)
	}
}

// helpTexts copies the HELP map for the exposition writer.
func (r *Registry) helpTexts() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.helps) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.helps))
	for k, v := range r.helps {
		out[k] = v
	}
	return out
}

// SetSpanHook installs (or clears, with nil) the hook invoked at every
// Stage span completion.
func (r *Registry) SetSpanHook(h SpanHook) {
	if r == nil {
		return
	}
	if h == nil {
		r.hook.Store(nil)
		return
	}
	r.hook.Store(&h)
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (later calls reuse the
// original buckets). Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Stage returns a named scan stage recording into the histogram
// `<name>{stage="<stage>"}`. Returns nil (no-op) on a nil registry.
func (r *Registry) Stage(name, stage string, bounds []float64) *Stage {
	if r == nil {
		return nil
	}
	h := r.Histogram(Name(name, "stage", stage), bounds)
	return &Stage{reg: r, name: stage, h: h}
}

// DurationBuckets are the default bounds (seconds) for per-stage
// virtual-time histograms: 1 ms up to the 6 s scan timeout.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 6}

// DepthBuckets are bounds for small discrete depths (redirect chains).
var DepthBuckets = []float64{0, 1, 2, 3, 4}

// Name builds a full Prometheus series name from a base metric name and
// label key/value pairs: Name("x_total", "class", "timeout") returns
// `x_total{class="timeout"}`. Labels are emitted in the given order; call
// with an even number of kv arguments.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a full series name into its base metric name and the
// label body (without braces): `x{a="b"}` → ("x", `a="b"`).
func splitName(full string) (base, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], strings.TrimSuffix(full[i+1:], "}")
	}
	return full, ""
}
