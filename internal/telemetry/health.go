package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Health tracks a long-running service's liveness and readiness for the
// /livez and /readyz endpoints. Liveness is unconditional — the process is
// alive as long as it answers. Readiness aggregates per-component states:
// any component marked unready (a degraded checkpoint journal, a lost
// shard) flips /readyz to 503 with the reasons listed, which is what a
// supervisor or load balancer keys restarts and traffic on. All methods
// are safe for concurrent use; a nil *Health is a valid always-ready no-op
// so wiring the endpoints is unconditional.
type Health struct {
	mu      sync.Mutex
	unready map[string]string // component -> reason
	checks  []healthCheck     // dynamic probes, evaluated per request
}

type healthCheck struct {
	component string
	probe     func() (ready bool, reason string)
}

// NewHealth returns a Health that is ready until a component reports
// otherwise.
func NewHealth() *Health {
	return &Health{unready: map[string]string{}}
}

// AddCheck registers a dynamic readiness probe evaluated on every Ready
// call (and therefore every /readyz request) — the pull-based twin of
// SetReady for states that already live elsewhere, like a telemetry gauge.
// Nil-safe.
func (h *Health) AddCheck(component string, probe func() (ready bool, reason string)) {
	if h == nil || component == "" || probe == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks = append(h.checks, healthCheck{component, probe})
}

// SetReady records one component's readiness. An unready component must
// supply a reason; marking it ready again clears it. Nil-safe.
func (h *Health) SetReady(component string, ready bool, reason string) {
	if h == nil || component == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if ready {
		delete(h.unready, component)
		return
	}
	if reason == "" {
		reason = "unready"
	}
	h.unready[component] = reason
}

// Ready reports overall readiness and the sorted "component: reason" list
// when not. Nil-safe (always ready).
func (h *Health) Ready() (bool, []string) {
	if h == nil {
		return true, nil
	}
	h.mu.Lock()
	var reasons []string
	for c, r := range h.unready {
		reasons = append(reasons, c+": "+r)
	}
	checks := h.checks
	h.mu.Unlock()
	// Probes run outside the mutex: they may consult other locked state
	// (telemetry snapshots) and must not be able to deadlock /readyz.
	for _, c := range checks {
		if ok, reason := c.probe(); !ok {
			if reason == "" {
				reason = "unready"
			}
			reasons = append(reasons, c.component+": "+reason)
		}
	}
	if len(reasons) == 0 {
		return true, nil
	}
	sort.Strings(reasons)
	return false, reasons
}

// healthDoc is the /livez and /readyz JSON document.
type healthDoc struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
}

// LiveHandler serves /livez: always 200 — the process answering is the
// check.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeHealth(w, http.StatusOK, healthDoc{Status: "ok"})
	})
}

// ReadyHandler serves /readyz: 200 while every component is ready, 503
// with the reasons once any is not.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if ok, reasons := h.Ready(); !ok {
			writeHealth(w, http.StatusServiceUnavailable, healthDoc{Status: "unready", Reasons: reasons})
			return
		}
		writeHealth(w, http.StatusOK, healthDoc{Status: "ok"})
	})
}

func writeHealth(w http.ResponseWriter, code int, doc healthDoc) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&doc)
}
