package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	r := New()
	r.Counter("http_test_total").Add(9)
	r.Histogram("http_test_seconds", []float64{0.1, 1}).Observe(0.5)

	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE http_test_total counter",
		"http_test_total 9",
		`http_test_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	snapBody, ctype := get("/snapshot")
	if ctype != "application/json" {
		t.Errorf("/snapshot content type = %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(snapBody), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Counters["http_test_total"] != 9 {
		t.Errorf("snapshot counter = %d, want 9", snap.Counters["http_test_total"])
	}

	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Error("/debug/pprof/ index lacks profile links")
	}
}
