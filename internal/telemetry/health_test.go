package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()

	get := func(hd http.Handler) (int, healthDoc) {
		rr := httptest.NewRecorder()
		hd.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
		var doc healthDoc
		if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
			t.Fatalf("bad health document %q: %v", rr.Body.String(), err)
		}
		return rr.Code, doc
	}

	if code, doc := get(h.LiveHandler()); code != 200 || doc.Status != "ok" {
		t.Fatalf("/livez = %d %+v, want 200 ok", code, doc)
	}
	if code, _ := get(h.ReadyHandler()); code != 200 {
		t.Fatalf("/readyz = %d, want 200 while ready", code)
	}

	h.SetReady("checkpoint", false, "journal degraded after storage failures")
	h.SetReady("shard-3", false, "")
	code, doc := get(h.ReadyHandler())
	if code != http.StatusServiceUnavailable || doc.Status != "unready" {
		t.Fatalf("/readyz = %d %+v, want 503 unready", code, doc)
	}
	if len(doc.Reasons) != 2 || !strings.Contains(doc.Reasons[0], "checkpoint") {
		t.Fatalf("reasons = %v, want sorted checkpoint+shard-3", doc.Reasons)
	}
	// Liveness is unconditional: a degraded service is still alive.
	if code, _ := get(h.LiveHandler()); code != 200 {
		t.Fatal("/livez flipped with readiness")
	}

	// Recovery clears the component.
	h.SetReady("checkpoint", true, "")
	h.SetReady("shard-3", true, "")
	if code, _ := get(h.ReadyHandler()); code != 200 {
		t.Fatalf("/readyz = %d after recovery, want 200", code)
	}

	// Nil-safety: always live, always ready.
	var nh *Health
	nh.SetReady("x", false, "y")
	if ok, _ := nh.Ready(); !ok {
		t.Fatal("nil Health not ready")
	}
	if code, _ := get(nh.ReadyHandler()); code != 200 {
		t.Fatal("nil Health /readyz not 200")
	}
}

func TestAlertReplaceRules(t *testing.T) {
	reg := New()
	var lines []string
	eng := NewAlertEngine(reg, func(format string, args ...any) {
		lines = append(lines, format)
	})
	always := func(*Snapshot) float64 { return 1 }
	eng.AddRule(Rule{Name: "old-ceiling", Value: always, Op: OpAbove, Threshold: 0})
	eng.AddRule(Rule{Name: "kept-floor", Value: always, Op: OpBelow, Threshold: 5})
	if got := eng.Evaluate(); len(got) != 2 {
		t.Fatalf("firing = %v, want both rules", got)
	}

	// Reload: old-ceiling disappears, kept-floor survives, new-floor lands.
	eng.ReplaceRules([]Rule{
		{Name: "kept-floor", Value: always, Op: OpBelow, Threshold: 5},
		{Name: "new-floor", Value: always, Op: OpBelow, Threshold: 10},
		{Name: "", Value: always}, // invalid: dropped
	})
	got := eng.Evaluate()
	if len(got) != 2 || got[0] != "kept-floor" || got[1] != "new-floor" {
		t.Fatalf("firing after reload = %v, want [kept-floor new-floor]", got)
	}
	// The removed rule's gauge was cleared, not left stuck at 1.
	if v := reg.Gauge(Name("alert_firing", "alert", "old-ceiling")).Value(); v != 0 {
		t.Errorf("removed rule's firing gauge = %d, want 0", v)
	}
	var resolved bool
	for _, l := range lines {
		if strings.Contains(l, "rule removed by reload") {
			resolved = true
		}
	}
	if !resolved {
		t.Error("no resolution logged for the removed firing rule")
	}

	// Nil-safety.
	var ne *AlertEngine
	ne.ReplaceRules([]Rule{{Name: "x", Value: always}})
}

func TestHealthDynamicCheck(t *testing.T) {
	h := NewHealth()
	degraded := false
	h.AddCheck("checkpoint", func() (bool, string) {
		if degraded {
			return false, "journal degraded"
		}
		return true, ""
	})
	if ok, _ := h.Ready(); !ok {
		t.Fatal("ready=false with healthy check")
	}
	degraded = true
	ok, reasons := h.Ready()
	if ok || len(reasons) != 1 || !strings.Contains(reasons[0], "journal degraded") {
		t.Fatalf("ready=%v reasons=%v, want unready with journal reason", ok, reasons)
	}
	degraded = false
	if ok, _ := h.Ready(); !ok {
		t.Fatal("check recovery did not restore readiness")
	}
	// Nil-safety.
	var nh *Health
	nh.AddCheck("x", func() (bool, string) { return false, "" })
}
