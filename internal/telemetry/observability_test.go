package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusHelpGolden pins HELP emission: one `# HELP` and one
// `# TYPE` line per family, no matter how many labeled series the family
// holds, with help texts escaped per the text format.
func TestPrometheusHelpGolden(t *testing.T) {
	r := New()
	r.Counter(Name("scan_errs_total", "class", "reset")).Add(2)
	r.Counter(Name("scan_errs_total", "class", "timeout")).Add(5)
	r.Counter(Name("scan_errs_total", "class", "dns")).Add(1)
	r.Gauge("scan_week").Set(3)
	h := r.Histogram(Name("scan_stage_seconds", "stage", "handshake"), []float64{0.01})
	h.Observe(0.005)
	h2 := r.Histogram(Name("scan_stage_seconds", "stage", "request"), []float64{0.01})
	h2.Observe(0.5)
	r.SetHelp("scan_errs_total", "failed connections by error class")
	r.SetHelp("scan_stage_seconds", `virtual-time stage histograms \ with
newline`)
	r.SetHelp("scan_missing", "set but never registered: not emitted")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP scan_errs_total failed connections by error class
# TYPE scan_errs_total counter
scan_errs_total{class="dns"} 1
scan_errs_total{class="reset"} 2
scan_errs_total{class="timeout"} 5
# HELP scan_stage_seconds virtual-time stage histograms \\ with\nnewline
# TYPE scan_stage_seconds histogram
scan_stage_seconds_bucket{stage="handshake",le="0.01"} 1
scan_stage_seconds_bucket{stage="handshake",le="+Inf"} 1
scan_stage_seconds_sum{stage="handshake"} 0.005
scan_stage_seconds_count{stage="handshake"} 1
scan_stage_seconds_bucket{stage="request",le="0.01"} 0
scan_stage_seconds_bucket{stage="request",le="+Inf"} 1
scan_stage_seconds_sum{stage="request"} 0.5
scan_stage_seconds_count{stage="request"} 1
# TYPE scan_week gauge
scan_week 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusKindConflictDeterministic pins the conflicting-kind
// resolution: a base name registered as several kinds always claims the
// highest-ranked one (histogram > gauge > counter), independent of map
// iteration order.
func TestPrometheusKindConflictDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		r := New()
		r.Counter(Name("mixed", "l", "c")).Inc()
		r.Gauge(Name("mixed", "l", "g")).Set(1)
		r.Histogram(Name("mixed", "l", "h"), []float64{1}).Observe(0.5)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "# TYPE mixed histogram") {
			t.Fatalf("iteration %d: TYPE line not histogram:\n%s", i, sb.String())
		}
		if strings.Count(sb.String(), "# TYPE mixed ") != 1 {
			t.Fatalf("iteration %d: more than one TYPE line for one base:\n%s", i, sb.String())
		}
	}
}

// TestSetHelpNilAndClear covers the nil registry and the clearing path.
func TestSetHelpNilAndClear(t *testing.T) {
	var nr *Registry
	nr.SetHelp("x", "help") // must not panic
	r := New()
	r.Counter("x_total").Inc()
	r.SetHelp("x_total", "something")
	r.SetHelp("x_total", "") // cleared
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# HELP") {
		t.Errorf("cleared help still emitted:\n%s", sb.String())
	}
}

// TestStartDebugServerBadAddr covers the listen-failure path.
func TestStartDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("definitely-not-a-host:not-a-port:extra", New()); err == nil {
		t.Fatal("StartDebugServer accepted a malformed address")
	}
}

// TestDebugServerDoubleClose pins Close idempotency: the second call
// returns the first call's result instead of racing a dead server.
func TestDebugServerDoubleClose(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestDebugServerSnapshotWhileWriting scrapes /snapshot and /metrics while
// writers mutate the registry (run under -race via scripts/check.sh): the
// documents must stay well-formed mid-campaign.
func TestDebugServerSnapshotWhileWriting(t *testing.T) {
	r := New()
	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("live_total")
			h := r.Histogram("live_seconds", DurationBuckets)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%10) / 100)
				r.Counter(Name("live_labelled_total", "w", fmt.Sprint(w))).Inc()
			}
		}(w)
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 25 && time.Now().Before(deadline); i++ {
		resp, err := http.Get("http://" + srv.Addr() + "/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("snapshot %d does not parse: %v", i, err)
		}
		resp.Body.Close()
		resp, err = http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "# TYPE") {
			t.Fatalf("metrics scrape %d: status=%d body=%q", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDebugHandlerExtraEndpoints checks extra-endpoint registration (and
// that blank entries are skipped rather than panicking the mux).
func TestDebugHandlerExtraEndpoints(t *testing.T) {
	extra := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("dashboard"))
	})
	srv, err := StartDebugServer("127.0.0.1:0", New(),
		Endpoint{Path: "/debug/campaign", Handler: extra},
		Endpoint{Path: "", Handler: extra}, // skipped
		Endpoint{Path: "/nil", Handler: nil},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/campaign")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "dashboard" {
		t.Fatalf("extra endpoint: status=%d body=%q", resp.StatusCode, body)
	}
	if resp, err := http.Get("http://" + srv.Addr() + "/nil"); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Error("nil-handler endpoint should not serve 200")
		}
		resp.Body.Close()
	}
}

// TestAlertEngine exercises the threshold engine: transitions flip the
// alert_firing gauges exactly once per crossing and log both directions.
func TestAlertEngine(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var logs []string
	eng := NewAlertEngine(r, func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	errRate := func(s *Snapshot) float64 {
		attempted := float64(s.Counters["conns_total"])
		if attempted == 0 {
			return 0
		}
		return float64(s.Counters["errs_total"]) / attempted
	}
	eng.AddRule(Rule{Name: "error-rate", Value: errRate, Op: OpAbove, Threshold: 0.5})
	eng.AddRule(Rule{Name: "domains-per-sec", Value: func(s *Snapshot) float64 {
		return float64(s.Gauges["dps"])
	}, Op: OpBelow, Threshold: 100})

	r.Gauge("dps").Set(500)
	if firing := eng.Evaluate(); len(firing) != 0 {
		t.Fatalf("healthy campaign firing %v", firing)
	}

	// Error rate climbs over the ceiling and throughput under the floor.
	r.Counter("conns_total").Add(10)
	r.Counter("errs_total").Add(8)
	r.Gauge("dps").Set(50)
	firing := eng.Evaluate()
	if len(firing) != 2 || firing[0] != "domains-per-sec" || firing[1] != "error-rate" {
		t.Fatalf("firing = %v, want sorted [domains-per-sec error-rate]", firing)
	}
	if got := r.Gauge(Name("alert_firing", "alert", "error-rate")).Value(); got != 1 {
		t.Errorf("error-rate gauge = %d, want 1", got)
	}
	if got := eng.Firing(); len(got) != 2 {
		t.Errorf("Firing() = %v", got)
	}

	// Recovery resolves both and resets the gauges.
	r.Counter("conns_total").Add(1000)
	r.Gauge("dps").Set(900)
	if firing := eng.Evaluate(); len(firing) != 0 {
		t.Fatalf("recovered campaign still firing %v", firing)
	}
	if got := r.Gauge(Name("alert_firing", "alert", "error-rate")).Value(); got != 0 {
		t.Errorf("error-rate gauge after recovery = %d, want 0", got)
	}

	mu.Lock()
	defer mu.Unlock()
	var fired, resolved int
	for _, l := range logs {
		if strings.HasPrefix(l, "alert firing:") {
			fired++
		}
		if strings.HasPrefix(l, "alert resolved:") {
			resolved++
		}
	}
	if fired != 2 || resolved != 2 {
		t.Errorf("transitions logged: fired=%d resolved=%d, want 2/2; logs=%v", fired, resolved, logs)
	}
}

// TestAlertEngineNilAndHandler covers the nil engine and the JSON
// endpoint.
func TestAlertEngineNilAndHandler(t *testing.T) {
	var nilEng *AlertEngine
	nilEng.AddRule(Rule{Name: "x", Value: func(*Snapshot) float64 { return 0 }})
	if got := nilEng.Evaluate(); got != nil {
		t.Errorf("nil Evaluate = %v", got)
	}
	if got := nilEng.Firing(); got != nil {
		t.Errorf("nil Firing = %v", got)
	}

	r := New()
	eng := NewAlertEngine(r, nil)
	eng.AddRule(Rule{Name: "floor", Value: func(s *Snapshot) float64 {
		return float64(s.Gauges["v"])
	}, Op: OpBelow, Threshold: 10})
	r.Gauge("v").Set(3)
	srv, err := StartDebugServer("127.0.0.1:0", r, Endpoint{Path: "/debug/alerts", Handler: eng.Handler()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Firing []string `json:"firing"`
		Rules  []struct {
			Name   string  `json:"name"`
			Op     string  `json:"op"`
			Value  float64 `json:"value"`
			Firing bool    `json:"firing"`
		} `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Firing) != 1 || doc.Firing[0] != "floor" {
		t.Fatalf("alerts doc firing = %v", doc.Firing)
	}
	if len(doc.Rules) != 1 || !doc.Rules[0].Firing || doc.Rules[0].Op != ">=" || doc.Rules[0].Value != 3 {
		t.Fatalf("alerts doc rules = %+v", doc.Rules)
	}
}
