package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition format
//	/snapshot       the Snapshot JSON document
//	/debug/pprof/   the stdlib pprof index (profile, heap, trace, …)
//
// Handlers are safe to serve while a campaign is mutating the registry.
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug endpoint; close it when the campaign
// finishes.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. ":9090", or ":0" for an
// ephemeral port) and serves DebugHandler(r) in a background goroutine.
func StartDebugServer(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }
