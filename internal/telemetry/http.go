package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Endpoint attaches an extra handler to the debug mux — the campaign
// dashboard (/debug/campaign), the trace viewer (/debug/traces) and the
// alert engine (/debug/alerts) register themselves this way without the
// telemetry package importing them. Entries with an empty path or nil
// handler are skipped.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// DebugHandler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition format
//	/snapshot       the Snapshot JSON document
//	/debug/pprof/   the stdlib pprof index (profile, heap, trace, …)
//
// plus any extra endpoints. Handlers are safe to serve while a campaign
// is mutating the registry.
func DebugHandler(r *Registry, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	for _, e := range extra {
		if e.Path == "" || e.Handler == nil {
			continue
		}
		mux.Handle(e.Path, e.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug endpoint; close it when the campaign
// finishes.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
	err  error
}

// StartDebugServer listens on addr (e.g. ":9090", or ":0" for an
// ephemeral port) and serves DebugHandler(r, extra...) in a background
// goroutine.
func StartDebugServer(addr string, r *Registry, extra ...Endpoint) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler(r, extra...), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down immediately. Idempotent: later calls
// return the first call's result.
func (d *DebugServer) Close() error {
	d.once.Do(func() { d.err = d.srv.Close() })
	return d.err
}
