package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Op is an alert rule's comparison direction.
type Op int

const (
	// OpAbove fires when the measured value exceeds the threshold
	// (ceilings: error rate).
	OpAbove Op = iota
	// OpBelow fires when the measured value drops under the threshold
	// (floors: throughput, spin-observable share).
	OpBelow
)

// String renders the operator the way alert specs spell it.
func (o Op) String() string {
	if o == OpBelow {
		return ">="
	}
	return "<="
}

// Rule is one thresholded condition over a registry snapshot. Value
// extracts the measured quantity; the rule fires when the value crosses
// the threshold in the Op direction.
type Rule struct {
	// Name labels the alert (and its alert_firing{alert="<name>"} gauge).
	Name string
	// Value measures the quantity from a snapshot. It must handle the
	// campaign's warm-up state (zero counters) gracefully.
	Value func(*Snapshot) float64
	// Op is the comparison direction; Threshold the limit.
	Op        Op
	Threshold float64
}

// violated reports whether the measured value breaches the rule.
func (r *Rule) violated(v float64) bool {
	if r.Op == OpBelow {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// AlertEngine evaluates threshold rules against the registry and exposes
// the outcome three ways: per-alert `alert_firing{alert="…"}` gauges (0/1)
// scraped with every other metric, structured warnings through Logf on
// every transition, and the /debug/alerts JSON document. Evaluation is
// pull-based — the caller decides the cadence (spinscan ties it to the
// progress ticker). A nil engine is a valid no-op.
type AlertEngine struct {
	reg  *Registry
	logf func(format string, args ...any)

	mu     sync.Mutex
	rules  []Rule
	gauges map[string]*Gauge
	firing map[string]bool
	values map[string]float64
}

// NewAlertEngine creates an engine over reg. logf receives one structured
// line per alert transition (nil disables logging).
func NewAlertEngine(reg *Registry, logf func(format string, args ...any)) *AlertEngine {
	return &AlertEngine{
		reg:    reg,
		logf:   logf,
		gauges: map[string]*Gauge{},
		firing: map[string]bool{},
		values: map[string]float64{},
	}
}

// AddRule registers a rule and pre-resolves its firing gauge. No-op on a
// nil engine or a rule without a Name or Value.
func (a *AlertEngine) AddRule(r Rule) {
	if a == nil || r.Name == "" || r.Value == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rules = append(a.rules, r)
	a.gauges[r.Name] = a.reg.Gauge(Name("alert_firing", "alert", r.Name))
}

// ReplaceRules swaps the engine's rule set atomically (the SIGHUP reload
// path). Gauges of rules that fired but no longer exist are cleared and a
// resolution is logged, so a reload can never leave a stale alert_firing
// gauge stuck at 1. Nil-safe.
func (a *AlertEngine) ReplaceRules(rules []Rule) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	keep := map[string]bool{}
	a.rules = a.rules[:0]
	for _, r := range rules {
		if r.Name == "" || r.Value == nil {
			continue
		}
		a.rules = append(a.rules, r)
		keep[r.Name] = true
		if a.gauges[r.Name] == nil {
			a.gauges[r.Name] = a.reg.Gauge(Name("alert_firing", "alert", r.Name))
		}
	}
	for name, on := range a.firing {
		if keep[name] || !on {
			continue
		}
		a.firing[name] = false
		a.gauges[name].Set(0)
		if a.logf != nil {
			a.logf("alert resolved: alert=%s (rule removed by reload)", name)
		}
	}
}

// Evaluate measures every rule against a fresh snapshot, flips the firing
// gauges, logs transitions, and returns the sorted names of currently
// firing alerts. Nil-safe.
func (a *AlertEngine) Evaluate() []string {
	if a == nil {
		return nil
	}
	snap := a.reg.Snapshot()
	snapPtr := &snap
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for i := range a.rules {
		r := &a.rules[i]
		v := r.Value(snapPtr)
		a.values[r.Name] = v
		now := r.violated(v)
		if now {
			out = append(out, r.Name)
		}
		if now == a.firing[r.Name] {
			continue
		}
		a.firing[r.Name] = now
		if now {
			a.gauges[r.Name].Set(1)
			if a.logf != nil {
				a.logf("alert firing: alert=%s value=%s threshold=%s%s",
					r.Name, trimFloat(v), r.Op, trimFloat(r.Threshold))
			}
		} else {
			a.gauges[r.Name].Set(0)
			if a.logf != nil {
				a.logf("alert resolved: alert=%s value=%s threshold=%s%s",
					r.Name, trimFloat(v), r.Op, trimFloat(r.Threshold))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Firing returns the sorted names of alerts firing as of the last
// Evaluate. Nil-safe.
func (a *AlertEngine) Firing() []string {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for name, on := range a.firing {
		if on {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// alertDoc is the /debug/alerts JSON document.
type alertDoc struct {
	Firing []string        `json:"firing"`
	Rules  []alertRuleView `json:"rules"`
}

type alertRuleView struct {
	Name      string  `json:"name"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	Value     float64 `json:"value"`
	Firing    bool    `json:"firing"`
}

// Handler serves the engine's state as JSON; re-evaluates on every
// request so the document is current even between ticker evaluations.
// A nil engine serves an empty document (HTTP 200).
func (a *AlertEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := alertDoc{Firing: []string{}, Rules: []alertRuleView{}}
		if a != nil {
			doc.Firing = a.Evaluate()
			if doc.Firing == nil {
				doc.Firing = []string{}
			}
			a.mu.Lock()
			for i := range a.rules {
				r := &a.rules[i]
				doc.Rules = append(doc.Rules, alertRuleView{
					Name: r.Name, Op: r.Op.String(), Threshold: r.Threshold,
					Value: a.values[r.Name], Firing: a.firing[r.Name],
				})
			}
			a.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&doc)
	})
}

// trimFloat renders thresholds and values compactly for log lines.
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
