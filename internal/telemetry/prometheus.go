package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4): one `# TYPE` line per metric
// family, series sorted by name, histograms expanded into cumulative
// `_bucket`/`_sum`/`_count` series with the conventional `le` label. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()

	type series struct {
		full string // full series name incl. labels
		line func(io.Writer) error
	}
	families := map[string]string{} // base name → type
	var all []series

	for name, v := range snap.Counters {
		base, _ := splitName(name)
		families[base] = "counter"
		name, v := name, v
		all = append(all, series{name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, v)
			return err
		}})
	}
	for name, v := range snap.Gauges {
		base, _ := splitName(name)
		families[base] = "gauge"
		name, v := name, v
		all = append(all, series{name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, v)
			return err
		}})
	}
	for name, h := range snap.Histograms {
		base, _ := splitName(name)
		families[base] = "histogram"
		name, h := name, h
		all = append(all, series{name, func(w io.Writer) error {
			return writeHistogram(w, name, h)
		}})
	}

	// Group series by base family, emit families and their series in
	// lexicographic order.
	sort.Slice(all, func(i, j int) bool { return all[i].full < all[j].full })
	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, families[base]); err != nil {
			return err
		}
		for _, s := range all {
			if b, _ := splitName(s.full); b != base {
				continue
			}
			if err := s.line(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram expands one histogram series into cumulative buckets.
func writeHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	base, labels := splitName(name)
	withLabels := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		le := `le="` + formatFloat(b) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabels(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabels(`le="+Inf"`), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, withLabels(""), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, withLabels(""), h.Count)
	return err
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// decimal form, no exponent for typical bucket bounds.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// FormatFloat 'g' may pick exponent form for small bounds (5e-05);
	// keep it — Prometheus parsers accept it.
	return strings.TrimSuffix(s, ".0")
}
