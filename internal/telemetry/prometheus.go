package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4): one `# HELP` line (when set via
// SetHelp) and one `# TYPE` line per metric family — no matter how many
// labeled series the family holds — series sorted by name, histograms
// expanded into cumulative `_bucket`/`_sum`/`_count` series with the
// conventional `le` label. A base name registered under conflicting kinds
// (a misuse) resolves deterministically: histogram wins over gauge wins
// over counter, because a histogram family's derived series would make
// any other TYPE claim flat-out wrong. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	helps := r.helpTexts()

	type series struct {
		full string // full series name incl. labels
		line func(io.Writer) error
	}
	families := map[string]string{} // base name → type
	var all []series

	for name, v := range snap.Counters {
		base, _ := splitName(name)
		families[base] = mergeKind(families[base], "counter")
		name, v := name, v
		all = append(all, series{name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, v)
			return err
		}})
	}
	for name, v := range snap.Gauges {
		base, _ := splitName(name)
		families[base] = mergeKind(families[base], "gauge")
		name, v := name, v
		all = append(all, series{name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, v)
			return err
		}})
	}
	for name, h := range snap.Histograms {
		base, _ := splitName(name)
		families[base] = mergeKind(families[base], "histogram")
		name, h := name, h
		all = append(all, series{name, func(w io.Writer) error {
			return writeHistogram(w, name, h)
		}})
	}

	// Group series by base family, emit families and their series in
	// lexicographic order.
	sort.Slice(all, func(i, j int) bool { return all[i].full < all[j].full })
	bases := make([]string, 0, len(families))
	for b := range families {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if h := helps[base]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, families[base]); err != nil {
			return err
		}
		for _, s := range all {
			if b, _ := splitName(s.full); b != base {
				continue
			}
			if err := s.line(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// kindRank orders metric kinds for conflicting-registration resolution.
func kindRank(kind string) int {
	switch kind {
	case "histogram":
		return 3
	case "gauge":
		return 2
	case "counter":
		return 1
	}
	return 0
}

// mergeKind resolves one family's TYPE when series of different kinds
// share a base name; the higher-ranked kind wins, independent of map
// iteration order.
func mergeKind(old, kind string) string {
	if kindRank(old) >= kindRank(kind) {
		return old
	}
	return kind
}

// escapeHelp escapes a HELP text per the Prometheus text format (only
// backslash and newline are special on HELP lines).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// writeHistogram expands one histogram series into cumulative buckets.
func writeHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	base, labels := splitName(name)
	withLabels := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		le := `le="` + formatFloat(b) + `"`
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabels(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabels(`le="+Inf"`), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, withLabels(""), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, withLabels(""), h.Count)
	return err
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// decimal form, no exponent for typical bucket bounds.
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// FormatFloat 'g' may pick exponent form for small bounds (5e-05);
	// keep it — Prometheus parsers accept it.
	return strings.TrimSuffix(s, ".0")
}
