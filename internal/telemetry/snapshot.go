package telemetry

// Snapshot is a JSON-serialisable point-in-time copy of every metric in a
// registry, keyed by full series name. It is what the /snapshot debug
// endpoint serves and what the spinscan progress reporter diffs between
// ticks.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current metric values. Writers are never blocked;
// the copy is per-metric atomic but not a globally consistent cut. A nil
// registry yields an empty (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// CounterTotal sums every counter series whose base metric name matches
// base exactly, across all label sets — e.g. the total error count over
// every error class. Returns 0 on a nil registry.
func (r *Registry) CounterTotal(base string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for name, c := range r.counts {
		if b, _ := splitName(name); b == base {
			total += c.Value()
		}
	}
	return total
}
