package rtt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFirstSample(t *testing.T) {
	e := New(0)
	if e.HasSample() {
		t.Fatal("fresh estimator claims samples")
	}
	if e.Smoothed() != DefaultInitialRTT || e.Min() != DefaultInitialRTT {
		t.Errorf("defaults: smoothed=%v min=%v", e.Smoothed(), e.Min())
	}
	e.Update(100*time.Millisecond, 50*time.Millisecond, true)
	if !e.HasSample() {
		t.Fatal("HasSample false after Update")
	}
	// ack_delay is ignored on the first sample (RFC 9002 §5.2).
	if e.Smoothed() != 100*time.Millisecond {
		t.Errorf("smoothed = %v, want 100ms", e.Smoothed())
	}
	if e.Min() != 100*time.Millisecond || e.Latest() != 100*time.Millisecond {
		t.Errorf("min=%v latest=%v", e.Min(), e.Latest())
	}
	if e.Var() != 50*time.Millisecond {
		t.Errorf("rttvar = %v, want 50ms", e.Var())
	}
}

func TestAckDelayAdjustment(t *testing.T) {
	e := New(25 * time.Millisecond)
	e.Update(100*time.Millisecond, 0, true)
	// Second sample: 150 ms with 20 ms ack delay → adjusted 130 ms.
	e.Update(150*time.Millisecond, 20*time.Millisecond, true)
	want := (7*100*time.Millisecond + 130*time.Millisecond) / 8
	if e.Smoothed() != want {
		t.Errorf("smoothed = %v, want %v", e.Smoothed(), want)
	}
	if got := e.Samples(); len(got) != 2 || got[1] != 130*time.Millisecond {
		t.Errorf("samples = %v", got)
	}
}

func TestAckDelayCappedAfterHandshake(t *testing.T) {
	e := New(25 * time.Millisecond)
	e.Update(100*time.Millisecond, 0, true)
	e.Update(200*time.Millisecond, 90*time.Millisecond, true)
	// Delay capped to 25 ms → adjusted 175 ms.
	if got := e.Samples()[1]; got != 175*time.Millisecond {
		t.Errorf("adjusted sample = %v, want 175ms", got)
	}

	e2 := New(25 * time.Millisecond)
	e2.Update(100*time.Millisecond, 0, false)
	e2.Update(200*time.Millisecond, 90*time.Millisecond, false)
	// Before handshake confirmation the cap does not apply → 110 ms.
	if got := e2.Samples()[1]; got != 110*time.Millisecond {
		t.Errorf("uncapped sample = %v, want 110ms", got)
	}
}

func TestAckDelayNotAppliedBelowMin(t *testing.T) {
	e := New(100 * time.Millisecond)
	e.Update(100*time.Millisecond, 0, true)
	// Subtracting the full 80 ms would drop below min_rtt → use raw latest.
	e.Update(120*time.Millisecond, 80*time.Millisecond, true)
	if got := e.Samples()[1]; got != 120*time.Millisecond {
		t.Errorf("sample = %v, want raw 120ms", got)
	}
}

func TestMinTracksMinimum(t *testing.T) {
	e := New(0)
	for _, s := range []time.Duration{100, 80, 120, 70, 300} {
		e.Update(s*time.Millisecond, 0, true)
	}
	if e.Min() != 70*time.Millisecond {
		t.Errorf("min = %v, want 70ms", e.Min())
	}
	if e.Latest() != 300*time.Millisecond {
		t.Errorf("latest = %v, want 300ms", e.Latest())
	}
}

func TestNonPositiveSampleClamped(t *testing.T) {
	e := New(0)
	e.Update(-5*time.Millisecond, 0, true)
	if e.Min() != Granularity || e.Latest() != Granularity {
		t.Errorf("min=%v latest=%v, want clamped to %v", e.Min(), e.Latest(), Granularity)
	}
}

func TestPTO(t *testing.T) {
	e := New(25 * time.Millisecond)
	e.Update(100*time.Millisecond, 0, true)
	want := 100*time.Millisecond + 4*50*time.Millisecond + 25*time.Millisecond
	if got := e.PTO(true); got != want {
		t.Errorf("PTO = %v, want %v", got, want)
	}
	if got := e.PTO(false); got != want-25*time.Millisecond {
		t.Errorf("PTO(false) = %v, want %v", got, want-25*time.Millisecond)
	}
}

func TestPTOGranularityFloor(t *testing.T) {
	e := New(time.Millisecond)
	// Identical samples drive rttvar toward 0; the 4*rttvar term must be
	// floored at kGranularity.
	for i := 0; i < 200; i++ {
		e.Update(10*time.Millisecond, 0, true)
	}
	if got := e.PTO(false); got < 10*time.Millisecond+Granularity {
		t.Errorf("PTO = %v, want >= smoothed+granularity", got)
	}
}

func TestMean(t *testing.T) {
	e := New(0)
	if e.Mean() != 0 {
		t.Error("mean of empty estimator not 0")
	}
	e.Update(100*time.Millisecond, 0, true)
	e.Update(200*time.Millisecond, 0, true)
	if got := e.Mean(); got != 150*time.Millisecond {
		t.Errorf("mean = %v, want 150ms", got)
	}
}

func TestSmoothedConvergesQuick(t *testing.T) {
	// Property: after many identical samples the smoothed RTT converges to
	// the sample value and min equals it.
	f := func(ms uint16) bool {
		d := time.Duration(ms%1000+1) * time.Millisecond
		e := New(0)
		for i := 0; i < 100; i++ {
			e.Update(d, 0, true)
		}
		diff := e.Smoothed() - d
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond && e.Min() == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSmoothedWithinSampleRangeQuick(t *testing.T) {
	// Property: smoothed RTT always lies within [min sample, max sample].
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := New(0)
		lo, hi := time.Duration(1<<62), time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r%2000+1) * time.Millisecond
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
			e.Update(d, 0, true)
		}
		return e.Smoothed() >= lo && e.Smoothed() <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	e := New(0)
	e.Update(42*time.Millisecond, 0, true)
	if s := e.String(); s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkUpdate(b *testing.B) {
	e := New(25 * time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Update(time.Duration(50+i%20)*time.Millisecond, 5*time.Millisecond, true)
	}
}
