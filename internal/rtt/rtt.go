// Package rtt implements the round-trip-time estimator of RFC 9002 §5.
//
// This estimator is the paper's baseline ("QUIC stack estimate"): it measures
// the time from sending an ack-eliciting packet to receiving the
// acknowledgement for it and subtracts the peer-reported ack_delay, so it
// tracks the network RTT much more closely than the spin bit, which also
// accumulates server processing time.
package rtt

import (
	"fmt"
	"time"
)

// DefaultInitialRTT is the pre-handshake RTT assumption of RFC 9002 §6.2.2.
const DefaultInitialRTT = 333 * time.Millisecond

// Granularity is the timer granularity kGranularity of RFC 9002.
const Granularity = time.Millisecond

// Estimator tracks latest, minimum and smoothed RTT plus variance following
// RFC 9002 §5.3. The zero value is not ready for use; call New.
type Estimator struct {
	hasSample   bool
	latest      time.Duration
	min         time.Duration
	smoothed    time.Duration
	rttvar      time.Duration
	maxAckDelay time.Duration
	samples     []time.Duration // every accepted latest_rtt, for analysis
}

// New returns an Estimator that caps peer ack_delay at maxAckDelay after the
// handshake is confirmed (RFC 9002 §5.3). A zero maxAckDelay uses the RFC
// 9000 default of 25 ms.
func New(maxAckDelay time.Duration) *Estimator {
	if maxAckDelay == 0 {
		maxAckDelay = 25 * time.Millisecond
	}
	return &Estimator{maxAckDelay: maxAckDelay}
}

// Update records an RTT sample. latest is the delay between sending the
// largest newly-acknowledged ack-eliciting packet and receiving the ACK;
// ackDelay is the peer-reported decoding of the ack_delay field;
// handshakeConfirmed selects whether ackDelay is capped at max_ack_delay.
// Non-positive samples are clamped to Granularity.
func (e *Estimator) Update(latest, ackDelay time.Duration, handshakeConfirmed bool) {
	if latest <= 0 {
		latest = Granularity
	}
	e.latest = latest
	if !e.hasSample {
		// First sample (RFC 9002 §5.2).
		e.hasSample = true
		e.min = latest
		e.smoothed = latest
		e.rttvar = latest / 2
		e.samples = append(e.samples, latest)
		return
	}
	if latest < e.min {
		e.min = latest
	}
	if handshakeConfirmed && ackDelay > e.maxAckDelay {
		ackDelay = e.maxAckDelay
	}
	adjusted := latest
	if adjusted >= e.min+ackDelay {
		adjusted -= ackDelay
	}
	diff := e.smoothed - adjusted
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.smoothed = (7*e.smoothed + adjusted) / 8
	e.samples = append(e.samples, adjusted)
}

// HasSample reports whether at least one RTT sample has been recorded.
func (e *Estimator) HasSample() bool { return e.hasSample }

// Latest returns the most recent raw RTT sample.
func (e *Estimator) Latest() time.Duration { return e.latest }

// Min returns the minimum observed RTT (min_rtt).
func (e *Estimator) Min() time.Duration {
	if !e.hasSample {
		return DefaultInitialRTT
	}
	return e.min
}

// Smoothed returns the exponentially weighted smoothed RTT.
func (e *Estimator) Smoothed() time.Duration {
	if !e.hasSample {
		return DefaultInitialRTT
	}
	return e.smoothed
}

// Var returns the RTT variance estimate (rttvar).
func (e *Estimator) Var() time.Duration {
	if !e.hasSample {
		return DefaultInitialRTT / 2
	}
	return e.rttvar
}

// PTO returns the probe timeout per RFC 9002 §6.2.1:
// smoothed_rtt + max(4*rttvar, kGranularity) + max_ack_delay.
func (e *Estimator) PTO(includeMaxAckDelay bool) time.Duration {
	v := 4 * e.Var()
	if v < Granularity {
		v = Granularity
	}
	pto := e.Smoothed() + v
	if includeMaxAckDelay {
		pto += e.maxAckDelay
	}
	return pto
}

// Samples returns all accepted (ack-delay-adjusted) RTT samples in arrival
// order. The returned slice aliases internal state and must not be modified.
func (e *Estimator) Samples() []time.Duration { return e.samples }

// Mean returns the mean of all accepted samples, or 0 if none.
func (e *Estimator) Mean() time.Duration {
	if len(e.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range e.samples {
		sum += s
	}
	return sum / time.Duration(len(e.samples))
}

// String summarises the estimator state for logs.
func (e *Estimator) String() string {
	return fmt.Sprintf("rtt{latest=%v min=%v smoothed=%v var=%v n=%d}",
		e.latest, e.Min(), e.Smoothed(), e.Var(), len(e.samples))
}
