package quicspin_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its table or histogram once (the reproduction
// output recorded in EXPERIMENTS.md) and then times the analysis
// computation. The underlying measurement campaign — world generation and
// the packet-level emulated scans — runs once, shared by all benchmarks.
// Control the population size with QUICSPIN_SCALE (default 4000; the
// calibrated reproduction in EXPERIMENTS.md uses 2000).

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"quicspin/internal/analysis"
	"quicspin/internal/core"
	"quicspin/internal/flowtable"
	"quicspin/internal/resilience"
	"quicspin/internal/scanner"
	"quicspin/internal/shard"
	"quicspin/internal/websim"
	"quicspin/internal/wire"
)

var (
	benchOnce sync.Once
	benchW    *websim.World
	benchV4   *analysis.Week
	benchV6   *analysis.Week
	benchLong []*analysis.Week
)

func benchScale() int {
	if v := os.Getenv("QUICSPIN_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 4000
}

// fixture runs the shared measurement campaign: one emulated IPv4 scan and
// one emulated IPv6 scan of the final campaign week (Tables 1-4, Figs.
// 3-4), plus twelve weekly fast-engine scans (Fig. 2).
func fixture(b *testing.B) (*websim.World, *analysis.Week, *analysis.Week, []*analysis.Week) {
	b.Helper()
	benchOnce.Do(func() {
		scale := benchScale()
		prof := websim.DefaultProfile()
		prof.Scale = scale
		fmt.Printf("## generating world at scale 1/%d and scanning (set QUICSPIN_SCALE to change)...\n", scale)
		start := time.Now()
		benchW = websim.Generate(prof)
		r4 := mustRun(benchW, scanner.Config{Week: prof.Weeks, Engine: scanner.EngineEmulated, Seed: 99})
		benchV4 = analysis.Analyze(r4)
		r6 := mustRun(benchW, scanner.Config{Week: prof.Weeks, IPv6: true, Engine: scanner.EngineEmulated, Seed: 99})
		benchV6 = analysis.Analyze(r6)
		for wk := 1; wk <= prof.Weeks; wk++ {
			r := mustRun(benchW, scanner.Config{Week: wk, Engine: scanner.EngineFast, Seed: 99})
			benchLong = append(benchLong, analysis.Analyze(r))
		}
		fmt.Printf("## campaign complete in %v (%d domains, %d servers)\n\n",
			time.Since(start).Round(time.Millisecond), len(benchW.Domains), len(benchW.Servers()))
	})
	return benchW, benchV4, benchV6, benchLong
}

var printOnce sync.Map

func printFixture(key, out string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(out)
	}
}

// BenchmarkTable1_IPv4Overview regenerates Table 1: Total/Resolved/QUIC/
// Spin domains and IPs for the Toplists, CZDS and com/net/org views.
func BenchmarkTable1_IPv4Overview(b *testing.B) {
	_, v4, _, _ := fixture(b)
	printFixture("t1", analysis.RenderOverview(v4).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range analysis.StandardViews() {
			analysis.Overview(v4, v)
		}
	}
}

// BenchmarkTable2_ASOrganizations regenerates Table 2: QUIC connections
// and spin activity per AS organisation for com/net/org.
func BenchmarkTable2_ASOrganizations(b *testing.B) {
	w, v4, _, _ := fixture(b)
	printFixture("t2", analysis.RenderOrgTable(v4, w.ASDB(), 8).String())
	view := analysis.StandardViews()[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.OrgTable(v4, w.ASDB(), view, 8)
	}
}

// BenchmarkTable3_SpinConfiguration regenerates Table 3: the All Zero /
// All One / Spin / Grease breakdown of QUIC domains.
func BenchmarkTable3_SpinConfiguration(b *testing.B) {
	_, v4, _, _ := fixture(b)
	printFixture("t3", analysis.RenderSpinConfig(v4).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range analysis.StandardViews() {
			analysis.SpinConfig(v4, v)
		}
	}
}

// BenchmarkFigure2_RFCCompliance regenerates Fig. 2: the histogram of
// weeks with spin activity across the 12-week campaign next to the
// RFC 9000 (1-in-16) and RFC 9312 (1-in-8) binomial reference shares.
func BenchmarkFigure2_RFCCompliance(b *testing.B) {
	_, _, _, weeks := fixture(b)
	l := analysis.Longitudinally(weeks)
	printFixture("f2", analysis.RenderLongitudinal(l).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Longitudinally(weeks)
	}
}

// BenchmarkTable4_IPv6Overview regenerates Table 4: the IPv6 view of the
// adoption overview.
func BenchmarkTable4_IPv6Overview(b *testing.B) {
	_, _, v6, _ := fixture(b)
	printFixture("t4", analysis.RenderOverview(v6).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range analysis.StandardViews() {
			analysis.Overview(v6, v)
		}
	}
}

// BenchmarkFigure3_AbsoluteAccuracy regenerates Fig. 3: histograms of the
// absolute difference between the mean spin-bit estimate and the mean
// stack estimate, for Spin/Grease in received (R) and sorted (S) order.
func BenchmarkFigure3_AbsoluteAccuracy(b *testing.B) {
	_, v4, _, _ := fixture(b)
	weeks := []*analysis.Week{v4}
	printFixture("f3", analysis.RenderAccuracy(weeks, 3))
	sets := accuracySets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			analysis.AbsHistogram(weeks, s)
		}
	}
}

// BenchmarkFigure4_RelativeAccuracy regenerates Fig. 4: histograms of the
// mapped ratio of means, plus the paper's §5.2 headline shares.
func BenchmarkFigure4_RelativeAccuracy(b *testing.B) {
	_, v4, _, _ := fixture(b)
	weeks := []*analysis.Week{v4}
	h := analysis.Headlines(weeks)
	ri := analysis.Reordering(weeks)
	printFixture("f4", analysis.RenderAccuracy(weeks, 4)+fmt.Sprintf(
		"headlines (Spin R, n=%d): overestimate=%.1f%% within-25ms=%.1f%% >200ms=%.1f%% within-25%%=%.1f%% within-2x=%.1f%% >3x=%.1f%%\n"+
			"reordering impact: %d/%d connections differ between R and S\n",
		h.N, h.OverestimateShare*100, h.Within25ms*100, h.Over200ms*100,
		h.Within25pct*100, h.Within2x*100, h.Over3x*100, ri.Differing, ri.Conns))
	sets := accuracySets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			analysis.RatioHistogram(weeks, s)
		}
	}
}

func accuracySets() []analysis.AccuracySet {
	return []analysis.AccuracySet{
		{Class: analysis.ClassSpin},
		{Class: analysis.ClassSpin, Sorted: true},
		{Class: analysis.ClassGrease},
		{Class: analysis.ClassGrease, Sorted: true},
	}
}

// BenchmarkAblation_ObserverFilters compares the passive observer's
// defences against reordering-induced bogus samples (DESIGN.md §5): raw
// edges, the packet-number guard, and the RFC 9312 heuristics.
func BenchmarkAblation_ObserverFilters(b *testing.B) {
	// A locally seeded rng (never the global math/rand source, which
	// test-order shuffling would perturb) keeps the injected reordering
	// pattern — and so the reported bogus-sample counts — identical across
	// runs. The whole repo follows this convention; nothing seeds or draws
	// from the global source.
	rng := rand.New(rand.NewSource(11))
	obs := reorderedWave(rng, 100*time.Millisecond, 200, 8, 0.05)
	cases := []struct {
		name string
		mk   func() *core.Observer
	}{
		{"raw", func() *core.Observer { return core.NewObserver(core.ObserverConfig{}) }},
		{"pn-guard", func() *core.Observer {
			return core.NewObserver(core.ObserverConfig{UsePacketNumberGuard: true})
		}},
		{"static-threshold", func() *core.Observer {
			return core.NewObserver(core.ObserverConfig{Filter: core.StaticThreshold{Min: 10 * time.Millisecond}})
		}},
		{"relative-filter", func() *core.Observer {
			return core.NewObserver(core.ObserverConfig{Filter: &core.RelativeFilter{Fraction: 0.1, WarmUp: 3}})
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var lastBogus, lastN int
			for i := 0; i < b.N; i++ {
				o := c.mk()
				for _, ob := range obs {
					o.Observe(core.ServerToClient, ob)
				}
				lastBogus, lastN = 0, 0
				for _, s := range o.ValidSamples() {
					lastN++
					if s.RTT < 50*time.Millisecond {
						lastBogus++
					}
				}
			}
			b.ReportMetric(float64(lastBogus), "bogus-samples")
			b.ReportMetric(float64(lastN), "samples")
		})
	}
}

// BenchmarkAblation_ConnectionLength measures the §6 conjecture: spin
// estimates stabilise on longer transfers because the inflated
// connection-start cycles get diluted by accurate in-transfer cycles.
func BenchmarkAblation_ConnectionLength(b *testing.B) {
	for _, kb := range []int{4, 32, 256} {
		kb := kb
		b.Run(fmt.Sprintf("body-%dKB", kb), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = spinAccuracyForBody(kb * 1000)
			}
			b.ReportMetric(ratio, "spin/stack-ratio")
		})
	}
}

// BenchmarkCampaign measures end-to-end campaign throughput of both
// engines over the QUICSPIN_SCALE population. domains/sec is the headline
// number of BENCH_PR5.json (see scripts/bench.sh); allocs/op and B/op track
// the memory cost of one full weekly scan.
func BenchmarkCampaign(b *testing.B) {
	prof := websim.DefaultProfile()
	prof.Scale = benchScale()
	w := websim.Generate(prof)
	for _, eng := range []struct {
		name string
		e    scanner.Engine
	}{{"fast", scanner.EngineFast}, {"emulated", scanner.EngineEmulated}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mustRun(w, scanner.Config{Week: 12, Engine: eng.e, Seed: 99, Workers: 4})
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(w.Domains))/elapsed, "domains/sec")
			}
		})
	}
}

// BenchmarkCampaignSharded measures the distributed coordinator's cost:
// the same one-week fast-engine campaign at 1 and 8 shards. On a machine
// with spare cores, domains/sec scales near-linearly up to
// min(shards, GOMAXPROCS); on a single core the 8-shard run must still
// stay within a constant factor of unsharded throughput (the coordinator,
// per-shard journals and merge are overhead, not work amplification).
// scripts/bench.sh gates both properties self-relatively, calibrated to
// the host's core count.
func BenchmarkCampaignSharded(b *testing.B) {
	prof := websim.DefaultProfile()
	prof.Scale = benchScale()
	w := websim.Generate(prof)
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				_, err := shard.Run(w, shard.Config{
					Shards: shards,
					Weeks:  []int{12},
					ForWeek: func(week int) scanner.Config {
						return scanner.Config{Engine: scanner.EngineFast, Seed: 99, Workers: 4}
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(w.Domains))/elapsed, "domains/sec")
			}
		})
	}
}

// BenchmarkCampaignJournal measures the checkpoint journal's cost on the
// scan hot path: the same one-week fast-engine campaign writing every
// domain to a journal, without and with aggressive segment rotation
// (64 KiB segments force rotations throughout the run). scripts/bench.sh
// gates the pair self-relatively — the rotating run must stay within a
// constant factor of the non-rotating one, proving rotation happens off
// the hot path — while the unjournaled hot path itself is gated against
// BENCH_PR5.json by BenchmarkCampaign above.
func BenchmarkCampaignJournal(b *testing.B) {
	prof := websim.DefaultProfile()
	prof.Scale = benchScale()
	w := websim.Generate(prof)
	for _, c := range []struct {
		name string
		seg  int64
	}{{"journal", 0}, {"journal-rotate", 64 << 10}} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mustRun(w, scanner.Config{
					Week: 12, Engine: scanner.EngineFast, Seed: 99, Workers: 4,
					Checkpoint: b.TempDir(),
					Journal:    resilience.JournalConfig{SegmentBytes: c.seg},
				})
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(w.Domains))/elapsed, "domains/sec")
			}
		})
	}
}

// BenchmarkScanThroughput times the two campaign engines per domain.
func BenchmarkScanThroughput(b *testing.B) {
	prof := websim.DefaultProfile()
	prof.Scale = 100_000
	w := websim.Generate(prof)
	for _, eng := range []struct {
		name string
		e    scanner.Engine
	}{{"emulated", scanner.EngineEmulated}, {"fast", scanner.EngineFast}} {
		b.Run(eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(w, scanner.Config{Week: 12, Engine: eng.e, Seed: int64(i), Workers: 4})
			}
			b.ReportMetric(float64(len(w.Domains)), "domains/op")
		})
	}
}

// reorderedWave builds a spin square wave with injected reordering.
func reorderedWave(rng *rand.Rand, period time.Duration, cycles, pktsPerCycle int, rate float64) []core.Observation {
	t0 := time.Date(2023, 5, 15, 0, 0, 0, 0, time.UTC)
	var obs []core.Observation
	pn := uint64(0)
	for c := 0; c < cycles; c++ {
		for p := 0; p < pktsPerCycle; p++ {
			at := t0.Add(time.Duration(c)*period + time.Duration(p)*period/time.Duration(pktsPerCycle+2))
			if rng.Float64() < rate {
				at = at.Add(period * 3 / 4)
			}
			obs = append(obs, core.Observation{T: at, PN: pn, Spin: c%2 == 1})
			pn++
		}
	}
	// Receive order.
	for i := 1; i < len(obs); i++ {
		for j := i; j > 0 && obs[j].T.Before(obs[j-1].T); j-- {
			obs[j], obs[j-1] = obs[j-1], obs[j]
		}
	}
	return obs
}

// spinAccuracyForBody runs one emulated exchange with the given body size
// and returns mean(spin)/mean(stack).
func spinAccuracyForBody(body int) float64 {
	// A dedicated single-server world: one spinning deployment with a
	// dynamic response plan, like the hosters driving the paper's Fig. 4.
	prof := websim.DefaultProfile()
	prof.Scale = 1
	prof.TopDomains = 1
	prof.ZoneDomains = 1
	prof.TopResolveRate, prof.ZoneResolveRate = 1, 1
	prof.TopQUICRate, prof.ZoneQUICRate = 1, 1
	prof.RedirectRate = 0
	prof.BodyMinBytes, prof.BodyMaxBytes = body, body+1
	prof.QUICOrgs = prof.QUICOrgs[3:4] // Hostinger profile
	prof.QUICOrgs[0].SpinIPShare = 1
	prof.QUICOrgs[0].StableSpinShare = 1
	prof.QUICOrgs[0].DisableEveryN = 0
	prof.LegacyOrgs = nil
	w := websim.Generate(prof)
	res := mustRun(w, scanner.Config{Week: 1, Engine: scanner.EngineEmulated, Seed: 5, Workers: 1})
	wk := analysis.Analyze(res)
	var sum float64
	n := 0
	for i := range wk.Domains {
		for j := range wk.Domains[i].Conns {
			c := &wk.Domains[i].Conns[j]
			if c.HasAccuracy {
				sum += c.RatioR
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// mustRun runs a scan, panicking on config errors (benchmark fixtures run
// inside sync.Once, where no *testing.B is in scope).
func mustRun(w *websim.World, cfg scanner.Config) *scanner.Result {
	r, err := scanner.Run(w, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// BenchmarkFlowtableIngest measures the passive observer's per-packet hot
// path (internal/flowtable): packets/sec through the fixed-size flow
// table under steady churn. Every wrap of the prebuilt trace shifts the
// flow keys into a fresh epoch, so admissions and LRU/idle evictions run
// continuously, like a live vantage. scripts/bench.sh gates this entry at
// zero allocs/op.
func BenchmarkFlowtableIngest(b *testing.B) {
	const (
		nFlows  = 64
		perFlow = 64
	)
	// Locally seeded rng: the trace is identical on every run.
	rng := rand.New(rand.NewSource(42))
	cidBytes := make([]byte, 8)
	rng.Read(cidBytes)
	cid := wire.NewConnectionID(cidBytes)
	trace := make([]flowtable.Packet, 0, nFlows*perFlow)
	pns := make([]uint64, nFlows)
	for p := 0; p < perFlow; p++ {
		for f := 0; f < nFlows; f++ {
			hdr := &wire.Header{DstConnID: cid, PacketNumber: pns[f], SpinBit: pns[f]%2 == 1, Reserved: 3}
			pkt, err := wire.AppendShortHeader(nil, hdr, wire.PingFrame{}.Append(nil), wire.NoAckedPacket)
			if err != nil {
				b.Fatalf("building packet: %v", err)
			}
			trace = append(trace, flowtable.Packet{Src: uint64(1 + f), Dst: uint64(1) << 32, Data: pkt})
			pns[f]++
		}
	}
	tbl := flowtable.New(flowtable.Config{Slots: 256, IdleTimeout: time.Hour, DCIDLen: 8})
	base := time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC).UnixNano()
	tn := base
	epoch := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		j := i % len(trace)
		if j == 0 {
			epoch += nFlows // fresh flow keys: constant admission + eviction churn
		}
		p := &trace[j]
		tn += int64(time.Millisecond)
		tbl.Ingest(tn, p.Src+epoch, p.Dst, p.Data)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "packets/sec")
	}
	b.StopTimer()
	if st := tbl.Stats(); st.Samples == 0 && b.N > nFlows*4 {
		b.Fatalf("benchmark produced no RTT samples: %+v", st)
	}
}
